"""Resilient offload path: determinism, fallback, recovery, accounting."""

import math

import pytest

from repro.network.faults import FaultPlan, ServerFaultPlan
from repro.runtime.batching import BatchingConfig
from repro.runtime.messages import BusyReply
from repro.runtime.multi import MultiClientSystem
from repro.runtime.resilience import CircuitBreaker, ResilienceConfig
from repro.runtime.system import OffloadingSystem, SystemConfig


def run_timeline(engine, duration_s=6.0, **cfg):
    system = OffloadingSystem(engine, config=SystemConfig(seed=7, **cfg))
    return system.run(duration_s), system


class TestResilienceConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(deadline_margin=0.0)
        with pytest.raises(ValueError):
            ResilienceConfig(max_retries=-1)
        with pytest.raises(ValueError):
            ResilienceConfig(backoff_jitter=1.5)
        with pytest.raises(ValueError):
            ResilienceConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            ResilienceConfig(k_ttl_s=0.0)

    def test_timeout_from_prediction(self):
        cfg = ResilienceConfig(deadline_margin=3.0, min_timeout_s=0.05)
        assert cfg.timeout_for(0.1) == pytest.approx(0.3)
        assert cfg.timeout_for(0.001) == 0.05          # floor
        assert cfg.timeout_for(math.inf) == 0.05       # degenerate prediction

    def test_backoff_grows_and_jitters(self):
        cfg = ResilienceConfig(backoff_base_s=0.1, backoff_factor=2.0,
                               backoff_jitter=0.5)
        mid1 = cfg.backoff_s(1, 0.5)
        mid2 = cfg.backoff_s(2, 0.5)
        assert mid2 == pytest.approx(2 * mid1)
        assert cfg.backoff_s(1, 0.0) == pytest.approx(0.05)
        assert cfg.backoff_s(1, 1.0) == pytest.approx(0.15)


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        br = CircuitBreaker(failure_threshold=3, cooldown_s=10.0)
        br.record_failure(0.0)
        br.record_failure(1.0)
        assert br.allow_offload(1.5)
        br.record_failure(2.0)
        assert br.is_open and not br.allow_offload(2.5)
        assert br.open_count == 1

    def test_success_resets_streak(self):
        br = CircuitBreaker(failure_threshold=3, cooldown_s=10.0)
        br.record_failure(0.0)
        br.record_failure(1.0)
        br.record_success(2.0)
        br.record_failure(3.0)
        br.record_failure(4.0)
        assert not br.is_open

    def test_probe_driven_half_open(self):
        br = CircuitBreaker(failure_threshold=1, cooldown_s=10.0)
        br.record_failure(0.0)
        assert not br.probe_may_close(5.0)
        # A success within the cooldown clears the streak but stays open.
        br.record_success(5.0)
        assert br.is_open
        assert br.probe_may_close(11.0)
        br.record_success(11.0)
        assert not br.is_open

    def test_reopen_restarts_cooldown(self):
        br = CircuitBreaker(failure_threshold=1, cooldown_s=10.0)
        br.record_failure(0.0)
        br.record_failure(8.0)  # still failing: cooldown clock restarts
        assert not br.probe_may_close(12.0)
        assert br.probe_may_close(18.0)


class TestDeterminism:
    @pytest.mark.parametrize("backend", ["naive", "planned"])
    @pytest.mark.parametrize("functional", [False, True])
    def test_zero_rate_plan_is_byte_identical(self, squeezenet_engine,
                                              backend, functional):
        # A FaultPlan with all rates zero must not perturb a single draw.
        base = dict(backend=backend, functional=functional,
                    resilience=ResilienceConfig())
        plain, _ = run_timeline(squeezenet_engine, duration_s=2.0, **base)
        faulty, _ = run_timeline(squeezenet_engine, duration_s=2.0,
                                 faults=FaultPlan(), **base)
        assert list(plain) == list(faulty)

    def test_same_seed_same_fault_sequence(self, squeezenet_engine):
        plan = FaultPlan(drop_prob=0.2, latency_spike_prob=0.1, seed=5)
        runs = [run_timeline(squeezenet_engine, duration_s=6.0, faults=plan,
                             resilience=ResilienceConfig())[0]
                for _ in range(2)]
        assert list(runs[0]) == list(runs[1])
        assert runs[0].retry_rate() > 0  # faults actually fired
        clean, _ = run_timeline(squeezenet_engine, duration_s=6.0,
                                resilience=ResilienceConfig())
        assert list(runs[0]) != list(clean)

    def test_resilience_free_when_nothing_fails(self, squeezenet_engine):
        legacy, _ = run_timeline(squeezenet_engine, duration_s=6.0)
        resilient, _ = run_timeline(squeezenet_engine, duration_s=6.0,
                                    resilience=ResilienceConfig())
        assert len(legacy) == len(resilient)
        for a, b in zip(legacy, resilient):
            assert a.total_s == b.total_s
            assert a.partition_point == b.partition_point
            assert b.status == "ok" and b.retries == 0 and b.wasted_s == 0.0


class TestServerCrash:
    CRASH = ServerFaultPlan(crash_windows=((2.0, 6.0),))

    def test_naive_client_stalls(self, squeezenet_engine):
        timeline, _ = run_timeline(squeezenet_engine, duration_s=12.0,
                                   server_faults=self.CRASH)
        assert timeline.availability() < 1.0
        failed = [r for r in timeline if r.status == "failed"]
        assert len(failed) == 1 and math.isinf(failed[-1].total_s)
        # Nothing after the stall: the device is blocked on the dead reply.
        assert failed[-1] is timeline.records[-1]

    def test_resilient_client_completes_everything(self, squeezenet_engine):
        timeline, system = run_timeline(squeezenet_engine, duration_s=12.0,
                                        server_faults=self.CRASH,
                                        resilience=ResilienceConfig(cooldown_s=4.0))
        assert timeline.availability() == 1.0
        assert timeline.fallback_rate() > 0
        assert all(math.isfinite(r.total_s) for r in timeline)
        # The breaker opened during the crash ...
        assert system.device.breaker.open_count >= 1
        # ... and the profiler's health probe closed it again after the
        # server came back: offloading resumes.
        late_ok = [r for r in timeline if r.start_s > 8.0 and r.status == "ok"
                   and not r.is_local]
        assert late_ok, "no offloads resumed after server recovery"

    def test_restart_wipes_server_state(self, squeezenet_engine):
        _, system = run_timeline(squeezenet_engine, duration_s=12.0,
                                 server_faults=self.CRASH,
                                 resilience=ResilienceConfig(cooldown_s=4.0))
        # The partition cache was cleared on restart, so post-recovery
        # offloads paid the partition overhead again.
        assert system.server._restarts_seen == 1


class TestFlakyLink:
    def test_retries_recover_dropped_transfers(self, squeezenet_engine):
        plan = FaultPlan(drop_prob=0.2, seed=5)
        timeline, _ = run_timeline(squeezenet_engine, duration_s=8.0, faults=plan,
                                   resilience=ResilienceConfig())
        assert timeline.availability() == 1.0
        assert any(r.status == "retried" for r in timeline)

    def test_component_sum_includes_wasted(self, squeezenet_engine):
        plan = FaultPlan(drop_prob=0.2, seed=5)
        timeline, _ = run_timeline(squeezenet_engine, duration_s=8.0, faults=plan,
                                   resilience=ResilienceConfig())
        for r in timeline:
            assert r.total_s == pytest.approx(
                r.device_s + r.upload_s + r.server_s + r.download_s
                + r.overhead_s + r.wasted_s)
        touched = [r for r in timeline if r.retries > 0]
        assert touched and all(r.wasted_s > 0 for r in touched)

    def test_failed_transfers_feed_estimator(self, squeezenet_engine):
        plan = FaultPlan(outages=((1.0, 5.0),))
        _, system = run_timeline(squeezenet_engine, duration_s=6.0, faults=plan,
                                 resilience=ResilienceConfig())
        assert system.device.estimator.failure_fraction > 0


class TestAdmissionControl:
    PLAN = ServerFaultPlan(queue_limit=3, retry_after_s=0.05,
                           admission_window_s=0.5)

    def _fleet(self, engine, resilience, duration_s=4.0, batching=None):
        config = SystemConfig(seed=7, policy="full", server_faults=self.PLAN,
                              resilience=resilience, batching=batching)
        system = MultiClientSystem(engine, 6, config=config)
        return system.run(duration_s), system

    def test_overload_sheds_and_resilient_fleet_completes(self, squeezenet_engine):
        result, system = self._fleet(squeezenet_engine, ResilienceConfig())
        assert system.server.rejected_count > 0
        assert result.availability == 1.0

    def test_naive_fleet_stalls_on_rejection(self, squeezenet_engine):
        result, system = self._fleet(squeezenet_engine, None)
        assert system.server.rejected_count > 0
        assert result.availability < 1.0

    def test_batched_queue_limit_rejects(self, squeezenet_engine):
        result, system = self._fleet(
            squeezenet_engine, ResilienceConfig(),
            batching=BatchingConfig(window_s=0.05))
        assert result.availability == 1.0
        assert system.server.rejected_count > 0

    def test_busy_reply_fields(self):
        reply = BusyReply(request_id=4, retry_after_s=0.1)
        assert reply.status == "rejected"


class TestBatchedFaults:
    CRASH = ServerFaultPlan(crash_windows=((1.0, 3.0),))

    def _fleet(self, engine, resilience, duration_s=6.0):
        config = SystemConfig(seed=7, server_faults=self.CRASH,
                              resilience=resilience,
                              batching=BatchingConfig(window_s=0.02))
        system = MultiClientSystem(engine, 4, config=config)
        return system.run(duration_s)

    def test_resilient_batched_fleet_completes(self, squeezenet_engine):
        result = self._fleet(squeezenet_engine, ResilienceConfig(cooldown_s=2.0))
        assert result.availability == 1.0
        assert result.fallback_rate > 0

    def test_naive_batched_fleet_terminates_with_stalls(self, squeezenet_engine):
        # The drain loop must not hang even though requests die silently.
        result = self._fleet(squeezenet_engine, None)
        assert result.availability < 1.0


class TestStaleLoadFactor:
    def test_k_expires_without_successful_query(self, squeezenet_engine):
        _, system = run_timeline(squeezenet_engine, duration_s=1.0,
                                 resilience=ResilienceConfig(k_ttl_s=5.0))
        device = system.device
        device._latest_k = 4.0
        device._k_time_s = 0.0
        assert device._current_k(3.0) == 4.0
        assert device._current_k(6.0) == 1.0   # TTL elapsed: back to neutral

    def test_fresh_k_survives(self, squeezenet_engine):
        _, system = run_timeline(squeezenet_engine, duration_s=6.0,
                                 resilience=ResilienceConfig())
        # The 5 s profiler period keeps k fresh under the 30 s TTL.
        assert system.device._k_time_s >= 5.0


class TestSlaDeadlineCeiling:
    """A request's SLA caps the retry budget: the margin-derived attempt
    deadline must never run past the point where the deadline is already
    lost (regression: the retry loop used to overshoot tight SLAs by
    ``margin x predicted x retries``)."""

    CRASH = ServerFaultPlan(crash_windows=((1.0, 5.0),))

    def test_timeout_for_honours_sla_ceiling(self):
        cfg = ResilienceConfig(deadline_margin=10.0, min_timeout_s=0.05)
        assert cfg.timeout_for(0.1) == pytest.approx(1.0)
        assert cfg.timeout_for(0.1, sla_s=0.3) == pytest.approx(0.3)
        assert cfg.timeout_for(0.1, sla_s=5.0) == pytest.approx(1.0)
        # A nearly-exhausted budget degrades to one short attempt, not a
        # zero-length one: the floor still applies.
        assert cfg.timeout_for(0.1, sla_s=0.001) == 0.05

    def _run(self, engine, sla_classes):
        system = OffloadingSystem(engine, config=SystemConfig(
            seed=7, server_faults=self.CRASH, sla_classes=sla_classes,
            resilience=ResilienceConfig(deadline_margin=10.0, max_retries=2)))
        return system.run(8.0)

    def test_sla_bounds_wasted_time_during_crash(self, squeezenet_engine):
        sla = 0.3
        with_sla = self._run(squeezenet_engine, (sla,))
        plain = self._run(squeezenet_engine, None)
        sla_failed = [r for r in with_sla if r.wasted_s > 0]
        plain_failed = [r for r in plain if r.wasted_s > 0]
        assert sla_failed and plain_failed
        for r in sla_failed:
            # The attempt deadline was capped at the SLA ...
            assert r.timeout_s <= sla + 1e-9
            # ... and the exhausted budget ended the loop: no retry can
            # meet a deadline that is already lost.
            assert r.retries == 0
            assert r.met_sla is False
        # Without the ceiling the same crash burns margin x predicted per
        # attempt, times the full retry budget.
        assert max(r.retries for r in plain_failed) == 2
        assert max(r.wasted_s for r in sla_failed) < min(
            r.wasted_s for r in plain_failed)

    def test_sla_run_is_deterministic(self, squeezenet_engine):
        a = self._run(squeezenet_engine, (0.3, 0.05))
        b = self._run(squeezenet_engine, (0.3, 0.05))
        assert list(a) == list(b)
        attainment = a.sla_attainment()
        assert 0.0 < attainment < 1.0  # crash window misses, healthy meets
