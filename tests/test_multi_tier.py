"""Three-tier (device/edge/cloud) partitioning extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multi_tier import (
    multi_tier_objective,
    MultiTierDecision,
    multi_tier_brute_force,
    multi_tier_decision,
)


def random_instance(seed, n=None):
    rng = np.random.default_rng(seed)
    n = n or int(rng.integers(1, 30))
    device = rng.random(n).tolist()
    edge = (rng.random(n) * 0.1).tolist()
    cloud = (rng.random(n) * 0.02).tolist()
    sizes = rng.integers(0, 10**6, n + 1).tolist()
    return device, edge, cloud, sizes


class TestAgainstBruteForce:
    @given(seed=st.integers(0, 2**31), b1=st.floats(1e5, 1e8),
           b2=st.floats(1e5, 1e9), ke=st.floats(1.0, 50.0), kc=st.floats(1.0, 10.0))
    @settings(max_examples=100, deadline=None)
    def test_optimal_value_matches(self, seed, b1, b2, ke, kc):
        device, edge, cloud, sizes = random_instance(seed)
        fast = multi_tier_decision(device, edge, cloud, sizes, b1, b2, ke, kc)
        brute = multi_tier_brute_force(device, edge, cloud, sizes, b1, b2, ke, kc)
        assert fast.predicted_latency == pytest.approx(brute.predicted_latency, rel=1e-9)

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=50, deadline=None)
    def test_points_are_consistent_with_value(self, seed):
        device, edge, cloud, sizes = random_instance(seed)
        d = multi_tier_decision(device, edge, cloud, sizes, 8e6, 50e6)
        p, q, n = d.device_point, d.edge_point, len(device)
        # Recompute the objective at the returned points.
        value = sum(device[:p])
        if not (p == n and q == n):
            value += sizes[p] * 8 / 8e6 + sum(edge[p:q])
            if q < n:
                value += sizes[q] * 8 / 50e6 + sum(cloud[q:])
        assert d.predicted_latency == pytest.approx(value, rel=1e-9)
        assert 0 <= p <= q <= n
        assert (d.device_nodes, d.edge_nodes, d.cloud_nodes) == (p, q - p, n - q)


class TestStructure:
    def test_dead_cloud_link_reduces_to_two_tier(self, alexnet_engine):
        """With an unusable edge->cloud link, the result is Algorithm 1's."""
        e = alexnet_engine
        cloud = (np.asarray(e.edge_times) / 3).tolist()
        three = multi_tier_decision(
            list(e.device_times), list(e.edge_times), cloud, list(e.sizes),
            8e6, 1.0,  # 1 bit/s to the cloud
        )
        two = e.decide(8e6)
        assert not three.uses_cloud
        assert three.device_point == two.point
        assert three.predicted_latency == pytest.approx(two.predicted_latency, rel=1e-9)

    def test_fast_cloud_pulls_work_from_edge(self, alexnet_engine):
        e = alexnet_engine
        cloud = (np.asarray(e.edge_times) / 10).tolist()
        three = multi_tier_decision(
            list(e.device_times), list(e.edge_times), cloud, list(e.sizes),
            8e6, 1e9,  # effectively free edge->cloud hop
        )
        assert three.uses_cloud
        assert three.cloud_nodes > 0

    def test_loaded_edge_skipped_entirely(self, alexnet_engine):
        """Saturated edge, fast cloud: the tensor transits the edge."""
        e = alexnet_engine
        cloud = (np.asarray(e.edge_times)).tolist()
        three = multi_tier_decision(
            list(e.device_times), list(e.edge_times), cloud, list(e.sizes),
            8e6, 1e8, k_edge=500.0, k_cloud=1.0,
        )
        assert three.edge_nodes == 0
        assert three.uses_cloud or three.is_local

    def test_terrible_everything_goes_local(self, alexnet_engine):
        e = alexnet_engine
        cloud = (np.asarray(e.edge_times)).tolist()
        three = multi_tier_decision(
            list(e.device_times), list(e.edge_times), cloud, list(e.sizes),
            1e3, 1e3, k_edge=100.0, k_cloud=100.0,
        )
        assert three.is_local
        assert three.predicted_latency == pytest.approx(float(np.sum(e.device_times)))


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            multi_tier_decision([1.0], [1.0, 2.0], [1.0], [1, 0], 1e6, 1e6)

    def test_sizes_length(self):
        with pytest.raises(ValueError):
            multi_tier_decision([1.0], [1.0], [1.0], [1], 1e6, 1e6)

    def test_bad_bandwidth(self):
        with pytest.raises(ValueError):
            multi_tier_decision([1.0], [1.0], [1.0], [1, 0], 0.0, 1e6)

    def test_bad_k(self):
        with pytest.raises(ValueError):
            multi_tier_decision([1.0], [1.0], [1.0], [1, 0], 1e6, 1e6, k_edge=0.5)

    def test_negative_times(self):
        with pytest.raises(ValueError):
            multi_tier_decision([-1.0], [1.0], [1.0], [1, 0], 1e6, 1e6)


class TestObjective:
    """``multi_tier_objective``: the explicit cost any (p, q) placement pays."""

    def test_decision_value_is_achieved_by_its_points(self):
        for seed in range(20):
            device, edge, cloud, sizes = random_instance(seed)
            d = multi_tier_decision(device, edge, cloud, sizes, 8e6, 50e6,
                                    k_edge=2.0, k_cloud=1.5)
            value = multi_tier_objective(
                d.device_point, d.edge_point, device, edge, cloud, sizes,
                8e6, 50e6, k_edge=2.0, k_cloud=1.5)
            assert value == pytest.approx(d.predicted_latency, rel=1e-12)

    @given(seed=st.integers(0, 2**31), b1=st.floats(1e5, 1e8),
           b2=st.floats(1e5, 1e9), ke=st.floats(1.0, 50.0), kc=st.floats(1.0, 10.0))
    @settings(max_examples=60, deadline=None)
    def test_decision_is_never_beaten_by_any_placement(self, seed, b1, b2, ke, kc):
        device, edge, cloud, sizes = random_instance(seed, n=8)
        d = multi_tier_decision(device, edge, cloud, sizes, b1, b2, ke, kc)
        n = len(device)
        best = min(
            multi_tier_objective(p, q, device, edge, cloud, sizes,
                                 b1, b2, k_edge=ke, k_cloud=kc)
            for p in range(n + 1) for q in range(p, n + 1))
        assert d.predicted_latency == pytest.approx(best, rel=1e-9)

    def test_fully_local_placement(self):
        device, edge, cloud, sizes = random_instance(3)
        n = len(device)
        assert multi_tier_objective(n, n, device, edge, cloud, sizes,
                                    8e6, 50e6) == pytest.approx(sum(device))

    def test_validation(self):
        device, edge, cloud, sizes = random_instance(3)
        n = len(device)
        with pytest.raises(ValueError):
            multi_tier_objective(2, 1, device, edge, cloud, sizes, 8e6, 50e6)
        with pytest.raises(ValueError):
            multi_tier_objective(0, n + 1, device, edge, cloud, sizes, 8e6, 50e6)


class TestExtraLatencies:
    """Per-hop link penalties on the device->edge and edge->cloud uplinks."""

    @given(seed=st.integers(0, 2**31), b1=st.floats(1e5, 1e8),
           b2=st.floats(1e5, 1e9), e1=st.floats(0.0, 0.2),
           e2=st.floats(0.0, 0.2))
    @settings(max_examples=60, deadline=None)
    def test_scan_matches_brute_force_with_extras(self, seed, b1, b2, e1, e2):
        device, edge, cloud, sizes = random_instance(seed)
        fast = multi_tier_decision(
            device, edge, cloud, sizes, b1, b2,
            extra_latency_edge_s=e1, extra_latency_cloud_s=e2)
        brute = multi_tier_brute_force(
            device, edge, cloud, sizes, b1, b2,
            extra_latency_edge_s=e1, extra_latency_cloud_s=e2)
        assert fast.predicted_latency == pytest.approx(
            brute.predicted_latency, rel=1e-9)

    def test_zero_extras_bit_identical_to_default(self):
        for seed in range(10):
            device, edge, cloud, sizes = random_instance(seed)
            base = multi_tier_decision(device, edge, cloud, sizes, 8e6, 50e6)
            zero = multi_tier_decision(
                device, edge, cloud, sizes, 8e6, 50e6,
                extra_latency_edge_s=0.0, extra_latency_cloud_s=0.0)
            assert zero.device_point == base.device_point
            assert zero.edge_point == base.edge_point
            assert zero.predicted_latency == base.predicted_latency  # bitwise

    def test_hop_charged_only_when_taken(self):
        device, edge, cloud, sizes = random_instance(4)
        n = len(device)
        for (p, q) in [(0, n // 2), (0, n), (n // 2, n), (n, n)]:
            plain = multi_tier_objective(p, q, device, edge, cloud, sizes,
                                         8e6, 50e6)
            priced = multi_tier_objective(
                p, q, device, edge, cloud, sizes, 8e6, 50e6,
                extra_latency_edge_s=0.5, extra_latency_cloud_s=0.25)
            expected = plain
            if not (p == n and q == n):
                expected += 0.5            # device->edge hop taken
                if q < n:
                    expected += 0.25       # edge->cloud hop taken
            assert priced == pytest.approx(expected, rel=1e-12)

    def test_huge_cloud_penalty_keeps_work_off_the_cloud(self):
        device, edge, cloud, sizes = random_instance(4)
        n = len(device)
        d = multi_tier_decision(device, edge, cloud, sizes, 8e6, 50e6,
                                extra_latency_cloud_s=1e9)
        assert d.edge_point == n   # two-tier split: cloud never entered
        d2 = multi_tier_decision(device, edge, cloud, sizes, 8e6, 50e6,
                                 extra_latency_edge_s=1e9,
                                 extra_latency_cloud_s=1e9)
        assert (d2.device_point, d2.edge_point) == (n, n)  # fully local

    def test_negative_extras_rejected(self):
        with pytest.raises(ValueError):
            multi_tier_decision([1.0], [1.0], [1.0], [1, 0], 1e6, 1e6,
                                extra_latency_edge_s=-0.1)
        with pytest.raises(ValueError):
            multi_tier_decision([1.0], [1.0], [1.0], [1, 0], 1e6, 1e6,
                                extra_latency_cloud_s=-0.1)


class TestExitRule:
    """``multi_tier_exit_decision``: the engine's exit rule lifted to the
    device/edge/cloud chain."""

    def _workloads(self, seed, exits=3):
        rng = np.random.default_rng(seed)
        workloads = []
        for e in range(exits):
            # Later exits carry more nodes: a longer backbone prefix.
            n = 4 + 4 * e
            workloads.append((
                rng.random(n).tolist(),
                (rng.random(n) * 0.1).tolist(),
                (rng.random(n) * 0.02).tolist(),
                rng.integers(0, 10**6, n + 1).tolist(),
            ))
        return workloads

    def test_sla_none_is_the_final_scan(self):
        from repro.core.multi_tier import multi_tier_exit_decision

        workloads = self._workloads(0)
        d = multi_tier_exit_decision(workloads, None, 8e6, 50e6, k_edge=2.0)
        direct = multi_tier_decision(*workloads[-1], 8e6, 50e6, k_edge=2.0)
        assert d.exit_index == len(workloads) - 1
        assert d.feasible is True
        assert d.decision == direct
        assert d.decisions[:-1] == (None,) * (len(workloads) - 1)

    @given(seed=st.integers(0, 2**31), sla=st.floats(1e-4, 20.0),
           b1=st.floats(1e5, 1e8), b2=st.floats(1e5, 1e9))
    @settings(max_examples=50, deadline=None)
    def test_rule_matches_explicit_enumeration(self, seed, sla, b1, b2):
        from repro.core.multi_tier import multi_tier_exit_decision

        workloads = self._workloads(seed)
        d = multi_tier_exit_decision(workloads, sla, b1, b2)
        per_exit = [multi_tier_decision(*w, b1, b2) for w in workloads]
        assert d.decisions == tuple(per_exit)
        feasible = [e for e, pd in enumerate(per_exit)
                    if pd.predicted_latency <= sla]
        if feasible:
            assert d.feasible is True
            assert d.exit_index == max(feasible)
        else:
            assert d.feasible is False
            lat = [pd.predicted_latency for pd in per_exit]
            assert d.exit_index == lat.index(min(lat))
        assert d.decision == per_exit[d.exit_index]

    def test_validation(self):
        from repro.core.multi_tier import multi_tier_exit_decision

        with pytest.raises(ValueError, match="empty"):
            multi_tier_exit_decision([], 1.0, 8e6, 50e6)
        with pytest.raises(ValueError, match="sla_s"):
            multi_tier_exit_decision(self._workloads(1), 0.0, 8e6, 50e6)
