"""CLI smoke tests."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_experiment_registry_covers_all_figures_and_tables(self):
        assert set(EXPERIMENTS) == {
            "fig1", "fig2", "fig6", "fig7", "fig8", "fig9",
            "table1", "table2", "table3", "table4",
        }


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "alexnet" in out and "GFLOPs" in out

    def test_summary(self, capsys):
        assert main(["summary", "alexnet"]) == 0
        assert "maxpool2" in capsys.readouterr().out

    def test_decide(self, capsys):
        assert main(["decide", "alexnet", "--bandwidth-mbps", "1"]) == 0
        out = capsys.readouterr().out
        assert "local inference" in out

    def test_decide_landscape(self, capsys):
        assert main(["decide", "alexnet", "--landscape"]) == 0
        out = capsys.readouterr().out
        assert "<-- chosen" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "squeezenet", "--duration", "2"]) == 0
        out = capsys.readouterr().out
        assert "inferences" in out and "partition points" in out

    def test_experiment_table4(self, capsys):
        assert main(["experiment", "table4"]) == 0
        assert "Raspberry Pi" in capsys.readouterr().out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "cross-check" in capsys.readouterr().out
