"""Sharded fleet: joint (point, server) routing, supervisor, failover.

Three layers of coverage:

- ``decide_fleet`` unit properties (reduction to ``decide``, server
  selection, extra-latency penalties, the ``allowed`` mask);
- the degenerate identity: a 1-server gateway with probing disabled
  produces records *equal* (frozen-dataclass equality, every field) to
  the direct :class:`~repro.runtime.multi.MultiClientSystem` path;
- the live fleet: supervisor state machine under crash/restart chaos,
  failover re-routing, gateway admission control, and the chaos
  interaction matrix (link faults x server faults x resilience).
"""

import math

import numpy as np
import pytest

from repro.core.engine import ServerProfile
from repro.hardware.gpu_model import GpuModel, GpuParams
from repro.network.channel import Channel, NetworkParams
from repro.network.faults import FaultPlan, ServerFaultPlan
from repro.network.traces import ConstantTrace
from repro.profiling.predictor import ScaledPredictor
from repro.runtime.gateway import EdgeGateway, GatewayConfig, GatewayFleetSystem
from repro.runtime.multi import MultiClientSystem, SharedEdgeServer, SharedLoadTracker
from repro.runtime.resilience import ResilienceConfig
from repro.runtime.supervisor import (
    DEAD,
    LIVE,
    SUSPECT,
    FleetSupervisor,
    SupervisorConfig,
)
from repro.runtime.system import SystemConfig


class TestDecideFleet:
    def test_single_server_reduces_to_decide(self, alexnet_engine):
        e = alexnet_engine
        for bw, k in [(1e6, 1.0), (8e6, 2.5), (100e6, 1.0), (2e5, 10.0)]:
            direct = e.decide(bw, k=k)
            fleet = e.decide_fleet([bw], [k])
            assert fleet.point == direct.point
            assert fleet.predicted_latency == direct.predicted_latency
            if fleet.point == e.num_nodes:
                assert fleet.server is None
            else:
                assert fleet.server == 0

    def test_picks_faster_server(self, alexnet_engine):
        e = alexnet_engine
        # Server 1: fat pipe, idle GPU.  Server 0: thin pipe, loaded GPU.
        d = e.decide_fleet([2e5, 100e6], [20.0, 1.0])
        if d.server is not None:
            assert d.server == 1
        # And the symmetric swap flips the choice.
        d2 = e.decide_fleet([100e6, 2e5], [1.0, 20.0])
        if d2.server is not None:
            assert d2.server == 0

    def test_tie_prefers_earliest_server(self, alexnet_engine):
        d = alexnet_engine.decide_fleet([50e6, 50e6], [1.0, 1.0])
        assert d.server in (0, None)

    def test_extra_latency_steers_away(self, alexnet_engine):
        e = alexnet_engine
        base = e.decide_fleet([50e6, 50e6], [1.0, 1.0])
        # A huge link penalty on server 0 moves the win to server 1.
        penalised = e.decide_fleet([50e6, 50e6], [1.0, 1.0],
                                   extra_latencies_s=[10.0, 0.0])
        if base.server is not None:
            assert penalised.server == 1
        # Penalising everyone by an *infinite* amount forces local.
        allpen = e.decide_fleet([50e6, 50e6], [1.0, 1.0],
                                extra_latencies_s=[1e9, 1e9])
        assert allpen.server is None
        assert allpen.point == e.num_nodes

    def test_allowed_mask(self, alexnet_engine):
        e = alexnet_engine
        d = e.decide_fleet([100e6, 100e6], [1.0, 1.0], allowed=[1])
        assert d.server in (1, None)
        assert d.decisions[0] is None
        empty = e.decide_fleet([100e6, 100e6], [1.0, 1.0], allowed=[])
        assert empty.server is None
        assert empty.point == e.num_nodes
        assert empty.predicted_latency == pytest.approx(
            e.decide(100e6).candidates[e.num_nodes])

    def test_decisions_are_index_aligned(self, alexnet_engine):
        e = alexnet_engine
        d = e.decide_fleet([8e6, 50e6], [2.0, 1.0])
        assert len(d.decisions) == 2
        for i, (bw, k) in enumerate([(8e6, 2.0), (50e6, 1.0)]):
            direct = e.decide(bw, k=k)
            assert d.decisions[i].point == direct.point
            assert d.decisions[i].predicted_latency == direct.predicted_latency
            np.testing.assert_array_equal(d.decisions[i].candidates,
                                          direct.candidates)

    def test_validation(self, alexnet_engine):
        with pytest.raises(ValueError):
            alexnet_engine.decide_fleet([8e6], [1.0, 2.0])
        with pytest.raises(ValueError):
            alexnet_engine.decide_fleet([8e6, 8e6], [1.0, 1.0],
                                        extra_latencies_s=[0.0])


def _direct_vs_degenerate(engine, config, duration_s=2.0, clients=3,
                          profiles=None):
    direct = MultiClientSystem(engine, clients, config=config)
    fleet = GatewayFleetSystem(engine, clients, num_servers=1, config=config,
                               gateway_config=GatewayConfig(probes=None),
                               profiles=profiles)
    return direct.run(duration_s), fleet.run(duration_s)


IDENTITY_CONFIGS = [
    ("plain", SystemConfig()),
    ("link_faults", SystemConfig(
        faults=FaultPlan(seed=7, drop_prob=0.2, outages=((0.5, 0.8),)))),
    ("server_crash", SystemConfig(
        server_faults=ServerFaultPlan(crash_windows=((0.4, 0.9),)),
        resilience=ResilienceConfig())),
    ("full_chaos", SystemConfig(
        faults=FaultPlan(seed=3, drop_prob=0.15),
        server_faults=ServerFaultPlan(crash_windows=((0.3, 0.7),),
                                      queue_limit=2),
        resilience=ResilienceConfig(max_retries=1))),
]


class TestDegenerateIdentity:
    """1-server gateway with probing disabled == the direct path, exactly."""

    @pytest.mark.parametrize("label,config", IDENTITY_CONFIGS)
    def test_records_identical(self, alexnet_engine, label, config):
        direct, degen = _direct_vs_degenerate(alexnet_engine, config)
        assert len(direct.timelines) == len(degen.timelines)
        for td, tg in zip(direct.timelines, degen.timelines):
            assert td.records == tg.records

    @pytest.mark.parametrize("label,config", IDENTITY_CONFIGS)
    def test_uniform_profile_records_identical(self, alexnet_engine, label,
                                               config):
        """Dressing the lone server in a default ``ServerProfile`` changes
        nothing: profiles are a belief overlay, and an empty belief is the
        homogeneous path bit-for-bit — even under chaos."""
        direct, degen = _direct_vs_degenerate(
            alexnet_engine, config, profiles=[ServerProfile()])
        for td, tg in zip(direct.timelines, degen.timelines):
            assert td.records == tg.records

    def test_server_id_stamping(self, alexnet_engine):
        _, degen = _direct_vs_degenerate(alexnet_engine, SystemConfig())
        for timeline in degen.timelines:
            for r in timeline:
                assert r.server_id == (None if r.is_local else 0)


def _fleet_parts(engine, num_servers, fault_plans=None, probes=None):
    """Servers + channels for direct supervisor/gateway unit tests."""
    trace = ConstantTrace(8e6)
    servers = []
    channels = []
    for s in range(num_servers):
        plan = fault_plans[s] if fault_plans else None
        servers.append(SharedEdgeServer(
            engine, SharedLoadTracker(), seed=100 + 1000 * s,
            fault_plan=plan, server_id=s))
        channels.append(Channel(trace, NetworkParams()))
    return servers, channels


class TestSupervisor:
    def test_probe_marks_crashed_server_dead_then_revives(self, alexnet_engine):
        plan = ServerFaultPlan(crash_windows=((1.0, 3.0),))
        servers, channels = _fleet_parts(alexnet_engine, 1, [plan])
        sup = FleetSupervisor(servers, channels,
                              config=SupervisorConfig(dead_after_misses=2),
                              seed=5)
        assert sup.probe(0, 0.5)              # healthy before the crash
        assert sup.health[0].state == LIVE
        assert not sup.probe(0, 1.5)          # inside the window: miss 1
        assert sup.health[0].state == SUSPECT
        assert not sup.probe(0, 2.0)          # miss 2: declared dead
        assert sup.health[0].state == DEAD
        assert not sup.routable(0)
        assert sup.live_servers() == ()
        assert sup.probe(0, 3.5)              # restarted: back to live
        assert sup.health[0].state == LIVE
        assert sup.routable(0)

    def test_restart_wipes_learned_state(self, alexnet_engine):
        plan = ServerFaultPlan(crash_windows=((1.0, 2.0),))
        servers, channels = _fleet_parts(alexnet_engine, 1, [plan])
        sup = FleetSupervisor(servers, channels, seed=5)
        assert sup.probe(0, 0.0)
        sup.health[0].k = 4.0
        sup.health[0].k_time_s = 0.0
        assert sup.estimators[0].sample_count > 0
        assert sup.detect_restart(0, 2.5)
        assert sup.health[0].k == 1.0
        assert sup.health[0].k_time_s == -math.inf
        assert sup.estimators[0].sample_count == 0
        # Idempotent until the *next* restart.
        assert not sup.detect_restart(0, 2.6)

    def test_k_ttl_and_bandwidth_fallback(self, alexnet_engine):
        servers, channels = _fleet_parts(alexnet_engine, 1)
        sup = FleetSupervisor(servers, channels,
                              config=SupervisorConfig(k_ttl_s=10.0), seed=5)
        # No data at all: fallbacks win.
        assert sup.k_for(0, 0.0, 3.3) == 3.3
        assert sup.bandwidth_for(0, 5e6) == 5e6
        assert sup.probe(0, 0.0)
        assert sup.k_for(0, 5.0, 3.3) == sup.health[0].k
        assert sup.bandwidth_for(0, 5e6) > 0
        assert sup.k_for(0, 20.0, 3.3) == 3.3   # expired

    def test_note_busy_keeps_server_live(self, alexnet_engine):
        servers, channels = _fleet_parts(alexnet_engine, 1)
        sup = FleetSupervisor(servers, channels, seed=5)
        sup.note_failure(0, 0.0)
        assert sup.health[0].state == SUSPECT
        sup.note_busy(0, 0.1)
        assert sup.health[0].state == LIVE
        assert sup.health[0].misses == 0
        assert sup.health[0].busy_count == 1

    def test_snapshot_shape(self, alexnet_engine):
        servers, channels = _fleet_parts(alexnet_engine, 2)
        sup = FleetSupervisor(servers, channels, seed=5)
        rows = sup.snapshot(0.0)
        assert set(rows) == {0, 1}
        for row in rows.values():
            assert row["state"] == LIVE
            assert row["breaker"] == "closed"

    def test_duplicate_server_ids_rejected(self, alexnet_engine):
        servers, channels = _fleet_parts(alexnet_engine, 2)
        servers[1].server_id = 0
        with pytest.raises(ValueError):
            FleetSupervisor(servers, channels)


class TestGatewayRouting:
    def test_exclude_is_a_preference(self, alexnet_engine):
        servers, channels = _fleet_parts(alexnet_engine, 2)
        gw = EdgeGateway(alexnet_engine, servers, channels)
        sid, _ = gw.route(0.0, 50e6, 1.0, exclude=(0,))
        assert sid in (1, None)
        # Excluding the whole fleet falls back to the full pool.
        sid2, decision = gw.route(0.0, 50e6, 1.0, exclude=(0, 1))
        assert (sid2 is not None) == (decision.point < alexnet_engine.num_nodes)

    def test_dark_fleet_resolves_locally(self, alexnet_engine):
        servers, channels = _fleet_parts(alexnet_engine, 2)
        gw = EdgeGateway(alexnet_engine, servers, channels)
        for sid in (0, 1):
            gw.supervisor.health[sid].state = DEAD
        sid, decision = gw.route(0.0, 50e6, 1.0)
        assert sid is None
        assert decision.point == alexnet_engine.num_nodes

    def test_admission_limit_rejects_when_saturated(self, alexnet_engine):
        servers, channels = _fleet_parts(alexnet_engine, 1)
        gw = EdgeGateway(alexnet_engine, servers, channels,
                         config=GatewayConfig(admission_limit=2,
                                              admission_window_s=1.0))
        routed = [gw.route(0.0, 50e6, 1.0)[0] for _ in range(4)]
        offloads = [sid for sid in routed if sid is not None]
        if offloads:
            assert len(offloads) <= 2
            assert gw.rejected_count >= 1
        # The window slides: capacity comes back.
        sid, _ = gw.route(5.0, 50e6, 1.0)
        assert sid == 0 or sid is None

    def test_admission_spreads_across_servers(self, alexnet_engine):
        servers, channels = _fleet_parts(alexnet_engine, 2)
        gw = EdgeGateway(alexnet_engine, servers, channels,
                         config=GatewayConfig(admission_limit=1,
                                              admission_window_s=1.0))
        routed = [gw.route(0.0, 50e6, 1.0)[0] for _ in range(2)]
        offloads = {sid for sid in routed if sid is not None}
        if len([s for s in routed if s is not None]) == 2:
            assert offloads == {0, 1}


class TestFailover:
    def test_crashed_server_fails_over_to_sibling(self, alexnet_engine):
        """2-server fleet, server 0 dark mid-run: availability stays 1."""
        plan0 = ServerFaultPlan(crash_windows=((0.5, 1.6),))
        config = SystemConfig(resilience=ResilienceConfig(max_retries=2))
        system = GatewayFleetSystem(
            alexnet_engine, num_clients=4, num_servers=2, config=config,
            gateway_config=GatewayConfig(probes=SupervisorConfig(
                probe_period_s=0.2, dead_after_misses=2)),
            server_faults=[plan0, None],
        )
        result = system.run(2.0)
        assert result.availability == 1.0
        stats = result.server_breakdown()
        assert len(stats) == 2
        # The healthy sibling absorbed traffic during the outage.
        during = [r for t in result.timelines for r in t
                  if 0.5 <= r.start_s < 1.6 and r.server_id is not None]
        if during:
            assert all(r.server_id == 1 for r in during
                       if r.completed and not r.fell_back)
        # Supervisor noticed the crash and the restart.
        assert system.supervisor.health[0].restarts_seen >= 1

    def test_single_server_fleet_still_retries_itself(self, alexnet_engine):
        """Exclusion is a preference: a lone server gets its own retries."""
        plan = ServerFaultPlan(crash_windows=((0.3, 0.6),))
        config = SystemConfig(resilience=ResilienceConfig(max_retries=2))
        system = GatewayFleetSystem(
            alexnet_engine, num_clients=2, num_servers=1, config=config,
            gateway_config=GatewayConfig(probes=None),
            server_faults=[plan],
        )
        result = system.run(1.0)
        assert result.availability == 1.0
        retried = [r for t in result.timelines for r in t if r.retries > 0]
        for r in retried:
            assert r.server_id in (0, None)


class TestChaosMatrix:
    """Link faults x server chaos x resilience, all through the gateway."""

    @pytest.mark.parametrize("link", [None, FaultPlan(seed=11, drop_prob=0.2)])
    @pytest.mark.parametrize("chaos", [False, True])
    @pytest.mark.parametrize("resilient", [False, True])
    def test_runs_to_completion(self, alexnet_engine, link, chaos, resilient):
        server_faults = None
        if chaos:
            server_faults = [
                ServerFaultPlan.chaos(seed=9, server_id=s, horizon_s=1.5,
                                      crashes=1, mean_downtime_s=0.4)
                for s in range(2)
            ]
        config = SystemConfig(
            faults=link,
            resilience=ResilienceConfig(max_retries=1) if resilient else None,
        )
        system = GatewayFleetSystem(
            alexnet_engine, num_clients=3, num_servers=2, config=config,
            gateway_config=GatewayConfig(probes=SupervisorConfig(
                probe_period_s=0.25, dead_after_misses=2)),
            server_faults=server_faults,
        )
        result = system.run(1.5)
        assert result.total_requests > 0
        assert 0.0 <= result.availability <= 1.0
        if resilient:
            # A resilient client always resolves (offload or local fallback).
            assert result.availability == 1.0
        for stat in result.server_breakdown():
            assert stat.requests >= 0
            if stat.requests == 0:
                assert math.isnan(stat.availability)

    @pytest.mark.parametrize("link", [None, FaultPlan(seed=11, drop_prob=0.2)])
    @pytest.mark.parametrize("chaos", [False, True])
    @pytest.mark.parametrize("resilient", [False, True])
    def test_uniform_profiles_identical_across_matrix(self, alexnet_engine,
                                                      link, chaos, resilient):
        """A fleet of identical ``ServerProfile``s is record-identical to
        the profile-free fleet in every cell of the chaos matrix — the
        heterogeneity machinery is provably dormant until beliefs differ."""
        def run_once(profiles):
            server_faults = None
            if chaos:
                server_faults = [
                    ServerFaultPlan.chaos(seed=9, server_id=s, horizon_s=1.0,
                                          crashes=1, mean_downtime_s=0.4)
                    for s in range(2)
                ]
            config = SystemConfig(
                faults=link,
                resilience=(ResilienceConfig(max_retries=1)
                            if resilient else None),
            )
            system = GatewayFleetSystem(
                alexnet_engine, num_clients=3, num_servers=2, config=config,
                gateway_config=GatewayConfig(probes=SupervisorConfig(
                    probe_period_s=0.25, dead_after_misses=2)),
                server_faults=server_faults,
                profiles=profiles,
            )
            return system.run(1.0)

        plain = run_once(None)
        dressed = run_once([ServerProfile(), ServerProfile()])
        for ta, tb in zip(plain.timelines, dressed.timelines):
            assert ta.records == tb.records

    def test_matrix_is_deterministic(self, alexnet_engine):
        def run_once():
            config = SystemConfig(
                faults=FaultPlan(seed=11, drop_prob=0.2),
                resilience=ResilienceConfig(max_retries=1))
            system = GatewayFleetSystem(
                alexnet_engine, num_clients=3, num_servers=2, config=config,
                gateway_config=GatewayConfig(probes=SupervisorConfig(
                    probe_period_s=0.25)),
                server_faults=[
                    ServerFaultPlan.chaos(seed=9, server_id=s, horizon_s=1.0)
                    for s in range(2)],
            )
            return system.run(1.0)

        a, b = run_once(), run_once()
        for ta, tb in zip(a.timelines, b.timelines):
            assert ta.records == tb.records


def _latency_parts(engine, latencies, bandwidth=8e6, jitter=0.05,
                   fault_plans=None):
    """Servers + channels with planted per-link base latencies."""
    servers, channels = [], []
    for s, base in enumerate(latencies):
        plan = fault_plans[s] if fault_plans else None
        servers.append(SharedEdgeServer(
            engine, SharedLoadTracker(), seed=100 + 1000 * s,
            fault_plan=plan, server_id=s))
        channels.append(Channel(
            ConstantTrace(bandwidth),
            NetworkParams(base_latency_s=base, jitter_sigma=jitter)))
    return servers, channels


class TestSupervisorLearning:
    """Online link-latency learning from the two-size probe decomposition."""

    def test_converges_to_planted_link_latencies(self, alexnet_engine):
        servers, channels = _latency_parts(alexnet_engine, [0.002, 0.02])
        sup = FleetSupervisor(servers, channels, seed=5)
        for i in range(30):
            sup.tick(i * 0.5)
        assert sup.links[0].sample_count > 10
        assert sup.latency_for(0) == pytest.approx(0.002, rel=0.5)
        assert sup.latency_for(1) == pytest.approx(0.02, rel=0.3)
        assert sup.latency_for(1) > sup.latency_for(0)

    def test_zero_jitter_learns_exactly(self, alexnet_engine):
        """With no transfer jitter the decomposition is algebraically
        exact: the learned latency IS the planted base latency."""
        servers, channels = _latency_parts(alexnet_engine, [0.0137],
                                           jitter=0.0)
        sup = FleetSupervisor(servers, channels, seed=5)
        for i in range(5):
            assert sup.probe(0, i * 0.5)
        assert sup.latency_for(0) == pytest.approx(0.0137, abs=1e-12)
        report = sup.last_probe[0]
        assert report.accepted
        assert report.bandwidth_bps == pytest.approx(8e6, rel=1e-9)

    def test_link_estimate_survives_restart_wipe(self, alexnet_engine):
        plan = ServerFaultPlan(crash_windows=((1.0, 2.0),))
        servers, channels = _latency_parts(alexnet_engine, [0.01],
                                           fault_plans=[plan])
        sup = FleetSupervisor(servers, channels, seed=5)
        assert sup.probe(0, 0.0)
        assert sup.probe(0, 0.5)
        learned = sup.latency_for(0)
        link_samples = sup.links[0].sample_count
        assert link_samples >= 2
        assert sup.detect_restart(0, 2.5)
        # Bandwidth window wiped (server state), link memory kept (path state).
        assert sup.estimators[0].sample_count == 0
        assert sup.links[0].sample_count == link_samples
        assert sup.latency_for(0) == learned

    def test_single_outlier_probe_rejected(self, alexnet_engine):
        servers, channels = _latency_parts(alexnet_engine, [0.002],
                                           jitter=0.0)
        sup = FleetSupervisor(servers, channels, seed=5)
        for i in range(6):
            assert sup.probe(0, i * 0.5)
        settled = sup.latency_for(0)
        # One congestion spike: the link momentarily looks 250x farther.
        channels[0].params = NetworkParams(base_latency_s=0.5, jitter_sigma=0.0)
        assert sup.probe(0, 10.0)
        assert sup.last_probe[0].accepted is False
        assert sup.links[0].rejected_count == 1
        assert sup.latency_for(0) == settled  # estimate unsmeared
        channels[0].params = NetworkParams(base_latency_s=0.002,
                                           jitter_sigma=0.0)
        assert sup.probe(0, 10.5)
        assert sup.last_probe[0].accepted

    def test_learning_is_deterministic_for_fixed_seed(self, alexnet_engine):
        def run_once():
            servers, channels = _latency_parts(alexnet_engine, [0.002, 0.02])
            sup = FleetSupervisor(servers, channels, seed=42)
            for i in range(10):
                sup.tick(i * 0.5)
            return sup

        a, b = run_once(), run_once()
        for sid in (0, 1):
            assert a.latency_for(sid) == b.latency_for(sid)
            assert a.bandwidth_for(sid, 0.0) == b.bandwidth_for(sid, 0.0)
            assert a.last_probe[sid] == b.last_probe[sid]

    def test_learn_links_off_keeps_prior_and_single_probe(self, alexnet_engine):
        servers, channels = _latency_parts(alexnet_engine, [0.02])
        sup = FleetSupervisor(
            servers, channels,
            config=SupervisorConfig(learn_links=False), seed=5)
        for i in range(5):
            assert sup.probe(0, i * 0.5)
        assert sup.links[0].sample_count == 0
        assert sup.latency_for(0) == 0.02       # config prior, untouched
        assert sup.last_probe == {}             # no decomposition happened
        assert sup.bandwidth_for(0, 0.0) > 0    # single-upload path still fed

    def test_gateway_extras_use_config_prior_without_probes(self, alexnet_engine):
        servers, channels = _latency_parts(alexnet_engine,
                                           [0.002, 0.02, 0.002])
        gw = EdgeGateway(alexnet_engine, servers, channels,
                         config=GatewayConfig(probes=None))
        extras = gw._extra_latencies()
        assert extras is gw._extra_latency  # no supervisor state consulted
        assert extras == pytest.approx([0.0, 0.018, 0.0])

    def test_gateway_extras_become_learned_and_relative(self, alexnet_engine):
        servers, channels = _latency_parts(alexnet_engine, [0.002, 0.02])
        gw = EdgeGateway(alexnet_engine, servers, channels,
                         config=GatewayConfig(probes=SupervisorConfig()))
        # Cold start: the learned estimates ARE the channel priors.
        assert gw._extra_latencies() == pytest.approx([0.0, 0.018])
        for i in range(20):
            gw.supervisor.tick(i * 0.5)
        extras = gw._extra_latencies()
        assert extras[0] == 0.0                 # nearest = zero reference
        assert extras[1] == pytest.approx(0.018, rel=0.3)


class TestProbeDecomposition:
    """A slow link must not be misread as a thin pipe or a loaded server."""

    def test_far_server_bandwidth_not_biased_low(self, alexnet_engine):
        # Equal true bandwidth, 20x different link latency.
        servers, channels = _latency_parts(alexnet_engine, [0.002, 0.04])
        sup = FleetSupervisor(servers, channels, seed=5)
        for i in range(20):
            sup.tick(i * 0.5)
        bw_near = sup.bandwidth_for(0, float("nan"))
        bw_far = sup.bandwidth_for(1, float("nan"))
        # Latency-corrected: both within 15% of the true 8 Mbit/s, and of
        # each other — distance no longer masquerades as thinness.
        assert bw_near == pytest.approx(8e6, rel=0.15)
        assert bw_far == pytest.approx(8e6, rel=0.15)
        # The distance landed where it belongs: in the link estimate.
        assert sup.latency_for(1) == pytest.approx(0.04, rel=0.3)
        # And nowhere near the load factor: both servers are idle.
        assert sup.health[0].k == 1.0
        assert sup.health[1].k == 1.0

    def test_single_upload_probe_conflates_them(self, alexnet_engine):
        """The legacy single-upload probe folds link latency into the
        bandwidth sample — the confusion the decomposition removes."""
        servers, channels = _latency_parts(alexnet_engine, [0.002, 0.04])
        sup = FleetSupervisor(
            servers, channels,
            config=SupervisorConfig(learn_links=False), seed=5)
        for i in range(20):
            sup.tick(i * 0.5)
        bw_near = sup.bandwidth_for(0, float("nan"))
        bw_far = sup.bandwidth_for(1, float("nan"))
        assert bw_far < 0.75 * bw_near  # the far server looks falsely thin


class TestHeterogeneousRouting:
    def test_scaled_predictor_steers_to_fast_server(self, alexnet_engine,
                                                    trained_report):
        e = alexnet_engine
        edge = trained_report.edge_predictor
        slow = ServerProfile(edge_predictor=ScaledPredictor(edge, 8.0))
        d = e.decide_fleet([50e6, 50e6], [1.0, 1.0],
                           profiles=[slow, ServerProfile()])
        if d.server is not None:
            assert d.server == 1
        d2 = e.decide_fleet([50e6, 50e6], [1.0, 1.0],
                            profiles=[ServerProfile(), slow])
        if d2.server is not None:
            assert d2.server == 0

    def test_profile_bandwidth_prior_fills_unknown(self, alexnet_engine):
        e = alexnet_engine
        profiles = [ServerProfile(bandwidth_bps=50e6), ServerProfile()]
        d = e.decide_fleet([None, 50e6], [1.0, 1.0], profiles=profiles)
        np.testing.assert_array_equal(
            d.decisions[0].candidates, d.decisions[1].candidates)
        with pytest.raises(ValueError):
            e.decide_fleet([None, 50e6], [1.0, 1.0])

    def test_profile_extra_latency_is_a_prior(self, alexnet_engine):
        e = alexnet_engine
        far = ServerProfile(extra_latency_s=10.0)
        d = e.decide_fleet([50e6, 50e6], [1.0, 1.0],
                           profiles=[far, ServerProfile()])
        if d.server is not None:
            assert d.server == 1
        # An explicit extra_latencies_s argument overrides the profile prior.
        d2 = e.decide_fleet([50e6, 50e6], [1.0, 1.0],
                            extra_latencies_s=[0.0, 10.0],
                            profiles=[far, ServerProfile()])
        if d2.server is not None:
            assert d2.server == 0

    def test_gateway_bandwidth_prior_prefers_profile(self, alexnet_engine):
        servers, channels = _fleet_parts(alexnet_engine, 2)
        gw = EdgeGateway(alexnet_engine, servers, channels,
                         profiles=[ServerProfile(bandwidth_bps=42e6), None])
        assert gw._bandwidth_prior(0, 5e6) == 42e6
        assert gw._bandwidth_prior(1, 5e6) == 5e6

    def test_equal_weights_keep_exact_rotation(self, alexnet_engine):
        servers, channels = _fleet_parts(alexnet_engine, 3)
        gw = EdgeGateway(alexnet_engine, servers, channels)
        picks = [gw._pick_tied([0, 1, 2], [1.0, 1.0, 1.0]) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]
        assert gw._rotation == 6
        assert gw._credits == {}  # the weighted machinery never woke up
        # Sub-1 load factors clamp to 1: still the equal-weight path.
        assert gw._pick_tied([0, 1], [0.5, 0.2]) == 0
        assert gw._rotation == 7

    def test_weighted_rotation_shares_by_residual_capacity(self, alexnet_engine):
        servers, channels = _fleet_parts(alexnet_engine, 2)
        gw = EdgeGateway(alexnet_engine, servers, channels)
        # Server 0 idle (k=1), server 1 at 3x load: near-tie traffic should
        # split ~3:1 by predicted residual capacity, not 1:1.
        picks = [gw._pick_tied([0, 1], [1.0, 3.0]) for _ in range(12)]
        counts = {i: picks.count(i) for i in (0, 1)}
        assert counts[0] + counts[1] == 12
        assert 8 <= counts[0] <= 10
        assert gw._rotation == 0  # round-robin counter untouched

    def test_profile_keeps_k_honest_for_slow_gpu(self, alexnet_engine,
                                                 trained_report):
        """A slow-but-idle GPU must read k~1 when its profile says it is
        slow; without the profile the hardware gap leaks into k."""
        e = alexnet_engine
        slow_gpu = GpuModel(GpuParams(
            conv_rate=4.0e12 / 3, dwconv_rate=0.4e12 / 3,
            matmul_rate=3.0e12 / 3, mem_bandwidth=250.0e9 / 3))
        belief = ServerProfile(edge_predictor=ScaledPredictor(
            trained_report.edge_predictor, 3.0))
        naive = SharedEdgeServer(e, SharedLoadTracker(), seed=1,
                                 server_id=0, gpu_model=slow_gpu)
        aware = SharedEdgeServer(e, SharedLoadTracker(), seed=1,
                                 server_id=1, gpu_model=slow_gpu,
                                 profile=belief)
        for i in range(5):
            # Spaced beyond the tracker window: zero contention, pure
            # hardware-vs-belief ratio.
            naive.handle_offload(i * 5.0, i, 0)
            aware.handle_offload(i * 5.0, 100 + i, 0)
        k_naive = naive.handle_load_query(25.0).k
        k_aware = aware.handle_load_query(25.0).k
        assert k_naive > 1.8    # hardware gap misread as load
        assert k_aware < 1.4    # profile absorbs it; k stays honest

    def test_fleet_system_prefers_fast_near_server(self, alexnet_engine,
                                                   trained_report):
        """End-to-end: fast+near vs slow+far, with truth (gpu_models,
        network_params) and belief (profiles) both heterogeneous."""
        e = alexnet_engine
        slow_gpu = GpuModel(GpuParams(
            conv_rate=1.0e12, dwconv_rate=0.1e12, matmul_rate=0.75e12,
            mem_bandwidth=62.5e9))
        profiles = [
            ServerProfile(),
            ServerProfile(edge_predictor=ScaledPredictor(
                trained_report.edge_predictor, 4.0), extra_latency_s=0.03),
        ]
        system = GatewayFleetSystem(
            e, num_clients=4, num_servers=2, config=SystemConfig(),
            gateway_config=GatewayConfig(probes=SupervisorConfig(
                probe_period_s=0.25)),
            gpu_models=[None, slow_gpu],
            network_params=[NetworkParams(),
                            NetworkParams(base_latency_s=0.03)],
            profiles=profiles,
        )
        result = system.run(2.0)
        assert result.total_requests > 0
        counts = system.gateway.routed_counts
        assert counts[0] > counts[1]


class TestFleetSystemValidation:
    def test_rejects_non_loadpart_policy(self, alexnet_engine):
        with pytest.raises(ValueError, match="loadpart"):
            GatewayFleetSystem(alexnet_engine, 1,
                               config=SystemConfig(policy="neurosurgeon"))

    def test_rejects_mismatched_fault_plans(self, alexnet_engine):
        with pytest.raises(ValueError, match="one plan per server"):
            GatewayFleetSystem(alexnet_engine, 1, num_servers=2,
                               server_faults=[None])

    def test_rejects_mismatched_heterogeneity_vectors(self, alexnet_engine):
        with pytest.raises(ValueError, match="profiles"):
            GatewayFleetSystem(alexnet_engine, 1, num_servers=2,
                               profiles=[ServerProfile()])
        with pytest.raises(ValueError, match="gpu_models"):
            GatewayFleetSystem(alexnet_engine, 1, num_servers=2,
                               gpu_models=[GpuModel()])
        with pytest.raises(ValueError, match="bandwidth_traces"):
            GatewayFleetSystem(alexnet_engine, 1, num_servers=2,
                               bandwidth_traces=[ConstantTrace(8e6)])

    def test_supervisor_link_config_validation(self):
        with pytest.raises(ValueError):
            SupervisorConfig(ping_bytes=0)
        with pytest.raises(ValueError):
            SupervisorConfig(link_alpha=0.0)
        with pytest.raises(ValueError):
            SupervisorConfig(link_alpha=1.5)
        with pytest.raises(ValueError):
            SupervisorConfig(link_outlier_factor=0.0)

    def test_server_profile_validation(self, alexnet_engine, trained_report):
        with pytest.raises(ValueError, match="edge"):
            ServerProfile(edge_predictor=trained_report.user_predictor)
        with pytest.raises(ValueError):
            ServerProfile(bandwidth_bps=0.0)
        with pytest.raises(ValueError):
            ServerProfile(extra_latency_s=-1.0)
        with pytest.raises(ValueError):
            ScaledPredictor(trained_report.edge_predictor, 0.0)

    def test_gateway_config_validation(self):
        with pytest.raises(ValueError):
            GatewayConfig(admission_limit=0)
        with pytest.raises(ValueError):
            GatewayConfig(admission_window_s=0.0)
        with pytest.raises(ValueError):
            SupervisorConfig(probe_period_s=0.0)
        with pytest.raises(ValueError):
            SupervisorConfig(dead_after_misses=0)


class TestExitFreeTrafficIdentity:
    """An exit-carrying engine with no SLA classes is invisible.

    ``SystemConfig(sla_classes=None)`` must keep the classic runtime
    verbatim: swapping the plain squeezenet engine for the exit-carrying
    one changes *no* record field — direct multi-client and a live
    2-server gateway fleet alike, across the chaos matrix.
    """

    @pytest.mark.parametrize("label,config", IDENTITY_CONFIGS)
    def test_direct_records_identical(self, engine_for, exit_engine_for,
                                      label, config):
        plain = MultiClientSystem(
            engine_for("squeezenet"), 3, config=config).run(2.0)
        exits = MultiClientSystem(
            exit_engine_for("squeezenet"), 3, config=config).run(2.0)
        assert len(plain.timelines) == len(exits.timelines)
        for tp, te in zip(plain.timelines, exits.timelines):
            assert tp.records == te.records
        assert math.isnan(exits.sla_attainment())
        assert set(exits.exit_counts()) == {None}

    @pytest.mark.parametrize("label,config", IDENTITY_CONFIGS)
    def test_gateway_records_identical(self, engine_for, exit_engine_for,
                                       label, config):
        plain = GatewayFleetSystem(
            engine_for("squeezenet"), 3, num_servers=2, config=config).run(2.0)
        exits = GatewayFleetSystem(
            exit_engine_for("squeezenet"), 3, num_servers=2,
            config=config).run(2.0)
        for tp, te in zip(plain.timelines, exits.timelines):
            assert tp.records == te.records
