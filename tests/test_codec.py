"""Transmission codecs: wire sizes, numerics, decision impact."""

import numpy as np
import pytest

from repro.core.engine import LoADPartEngine
from repro.models import build_model
from repro.network.codec import TensorCodec


class TestWireSizes:
    def test_ratios(self):
        assert TensorCodec("fp32").compression_ratio == 1.0
        assert TensorCodec("fp16").compression_ratio == 2.0
        assert TensorCodec("int8").compression_ratio == 4.0

    def test_wire_bytes(self):
        assert TensorCodec("int8").wire_bytes(4000) == 1000
        assert TensorCodec("fp16").wire_bytes(4000) == 2000
        assert TensorCodec("fp32").wire_bytes(4000) == 4000

    def test_unknown_codec(self):
        with pytest.raises(ValueError, match="unknown codec"):
            TensorCodec("bf16")

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            TensorCodec("fp16").wire_bytes(-1)


class TestNumerics:
    def test_fp32_round_trip_exact(self, rng):
        x = rng.standard_normal((4, 8)).astype(np.float32)
        codec = TensorCodec("fp32")
        np.testing.assert_array_equal(codec.round_trip(x), x)

    def test_fp16_round_trip_close(self, rng):
        x = rng.standard_normal((16, 16)).astype(np.float32)
        assert TensorCodec("fp16").max_abs_error(x) < 5e-3

    def test_int8_round_trip_bounded_by_step(self, rng):
        x = (rng.standard_normal((32, 32)) * 10).astype(np.float32)
        codec = TensorCodec("int8")
        step = (x.max() - x.min()) / 255.0
        assert codec.max_abs_error(x) <= step * 0.51

    def test_int8_constant_tensor(self):
        x = np.full((4, 4), 3.14, dtype=np.float32)
        codec = TensorCodec("int8")
        np.testing.assert_allclose(codec.round_trip(x), x, atol=1e-6)

    def test_encoded_payload_sizes(self, rng):
        x = rng.standard_normal((10, 10)).astype(np.float32)
        assert TensorCodec("fp32").encode(x).nbytes == 400
        assert TensorCodec("fp16").encode(x).nbytes == 200
        assert TensorCodec("int8").encode(x).nbytes == 100

    def test_codec_mismatch_rejected(self, rng):
        x = rng.standard_normal((2, 2)).astype(np.float32)
        enc = TensorCodec("fp16").encode(x)
        with pytest.raises(ValueError, match="mismatch"):
            TensorCodec("int8").decode(enc)

    def test_top1_preserved_through_int8_boundary(self, rng):
        """Quantising the boundary tensor rarely flips the classification."""
        from repro.graph.partitioner import GraphPartitioner
        from repro.nn import GraphExecutor, SegmentExecutor

        graph = build_model("squeezenet")
        executor = GraphExecutor(graph, seed=3)
        x = rng.standard_normal(graph.input_spec.shape).astype(np.float32)
        reference = executor.run(x)
        part = GraphPartitioner(graph).partition(47)
        head = SegmentExecutor(part.head, params=executor.params)
        boundary = head.run({graph.input_name: x})
        codec = TensorCodec("int8")
        decoded = {k: codec.round_trip(v) for k, v in boundary.items()}
        tail = SegmentExecutor(part.tail, params=executor.params)
        result = tail.run(decoded)[graph.output_name]
        assert np.argmax(result) == np.argmax(reference)


class TestDecisionImpact:
    def test_compression_shifts_point_earlier(self, trained_report):
        """Cheaper uploads never push the partition point later."""
        graph = build_model("squeezenet")
        points = {}
        for name in ("fp32", "fp16", "int8"):
            engine = LoADPartEngine(
                graph, trained_report.user_predictor, trained_report.edge_predictor,
                upload_codec=TensorCodec(name),
            )
            points[name] = engine.decide(4e6).point
        assert points["int8"] <= points["fp16"] <= points["fp32"]

    def test_int8_rescues_low_bandwidth_offloading(self, trained_report):
        """At 2 Mbps SqueezeNet is local with fp32 uploads but can offload
        partially once uploads shrink 4x."""
        graph = build_model("squeezenet")
        fp32 = LoADPartEngine(graph, trained_report.user_predictor,
                              trained_report.edge_predictor)
        int8 = LoADPartEngine(graph, trained_report.user_predictor,
                              trained_report.edge_predictor,
                              upload_codec=TensorCodec("int8"))
        n = fp32.num_nodes
        assert fp32.decide(2e6).point == n
        assert int8.decide(2e6).point < n
