"""Transmission codecs: wire sizes, numerics, decision impact."""

import numpy as np
import pytest

from repro.core.engine import LoADPartEngine
from repro.models import build_model
from repro.network.codec import TensorCodec


class TestWireSizes:
    def test_ratios(self):
        assert TensorCodec("fp32").compression_ratio == 1.0
        assert TensorCodec("fp16").compression_ratio == 2.0
        assert TensorCodec("int8").compression_ratio == 4.0

    def test_wire_bytes(self):
        assert TensorCodec("int8").wire_bytes(4000) == 1000
        assert TensorCodec("fp16").wire_bytes(4000) == 2000
        assert TensorCodec("fp32").wire_bytes(4000) == 4000

    def test_unknown_codec(self):
        with pytest.raises(ValueError, match="unknown codec"):
            TensorCodec("bf16")

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            TensorCodec("fp16").wire_bytes(-1)


class TestNumerics:
    def test_fp32_round_trip_exact(self, rng):
        x = rng.standard_normal((4, 8)).astype(np.float32)
        codec = TensorCodec("fp32")
        np.testing.assert_array_equal(codec.round_trip(x), x)

    def test_fp16_round_trip_close(self, rng):
        x = rng.standard_normal((16, 16)).astype(np.float32)
        assert TensorCodec("fp16").max_abs_error(x) < 5e-3

    def test_int8_round_trip_bounded_by_step(self, rng):
        x = (rng.standard_normal((32, 32)) * 10).astype(np.float32)
        codec = TensorCodec("int8")
        step = (x.max() - x.min()) / 255.0
        assert codec.max_abs_error(x) <= step * 0.51

    def test_int8_constant_tensor(self):
        x = np.full((4, 4), 3.14, dtype=np.float32)
        codec = TensorCodec("int8")
        np.testing.assert_allclose(codec.round_trip(x), x, atol=1e-6)

    def test_encoded_payload_sizes(self, rng):
        x = rng.standard_normal((10, 10)).astype(np.float32)
        assert TensorCodec("fp32").encode(x).nbytes == 400
        assert TensorCodec("fp16").encode(x).nbytes == 200
        assert TensorCodec("int8").encode(x).nbytes == 100

    def test_codec_mismatch_rejected(self, rng):
        x = rng.standard_normal((2, 2)).astype(np.float32)
        enc = TensorCodec("fp16").encode(x)
        with pytest.raises(ValueError, match="mismatch"):
            TensorCodec("int8").decode(enc)

    def test_top1_preserved_through_int8_boundary(self, rng):
        """Quantising the boundary tensor rarely flips the classification."""
        from repro.graph.partitioner import GraphPartitioner
        from repro.nn import GraphExecutor, SegmentExecutor

        graph = build_model("squeezenet")
        executor = GraphExecutor(graph, seed=3)
        x = rng.standard_normal(graph.input_spec.shape).astype(np.float32)
        reference = executor.run(x)
        part = GraphPartitioner(graph).partition(47)
        head = SegmentExecutor(part.head, params=executor.params)
        boundary = head.run({graph.input_name: x})
        codec = TensorCodec("int8")
        decoded = {k: codec.round_trip(v) for k, v in boundary.items()}
        tail = SegmentExecutor(part.tail, params=executor.params)
        result = tail.run(decoded)[graph.output_name]
        assert np.argmax(result) == np.argmax(reference)


ALL_CODECS = sorted(TensorCodec.BYTES_PER_ELEMENT)

#: Input dtypes a caller may legitimately hand to ``encode`` — every codec
#: normalises to float32 first, so the round trip is judged against the
#: float32 view of the input.
INPUT_DTYPES = (np.float32, np.float64, np.float16)


def _inputs(rng, dtype):
    """(label, array) cases: contiguous, three non-contiguous views, empties."""
    base = (rng.standard_normal((6, 8, 10)) * 4).astype(dtype)
    return [
        ("contiguous", base),
        ("strided", base[::2, :, ::3]),
        ("transposed", base.transpose(2, 0, 1)),
        ("reversed", base[:, ::-1, :]),
        ("zero_rows", base[:0]),
        ("empty", np.empty((0,), dtype=dtype)),
    ]


class TestRoundTripMatrix:
    """Every codec × input dtype × (non-)contiguity × zero-size."""

    @pytest.mark.parametrize("dtype", INPUT_DTYPES,
                             ids=[np.dtype(d).name for d in INPUT_DTYPES])
    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_round_trip(self, rng, name, dtype):
        codec = TensorCodec(name)
        for label, x in _inputs(rng, dtype):
            ref = np.ascontiguousarray(x, dtype=np.float32)
            out = codec.round_trip(x)
            assert out.shape == ref.shape, (label, out.shape)
            assert out.dtype == np.float32
            if codec.lossless:
                # Byte-identical, not merely close.
                assert out.tobytes() == ref.tobytes(), (name, label)
            else:
                bound = codec.error_bound(ref)
                err = float(np.abs(out - ref).max()) if ref.size else 0.0
                assert err <= bound, (name, label, err, bound)

    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_zero_size_tensors(self, name):
        codec = TensorCodec(name)
        for shape in ((0,), (0, 4), (3, 0, 5)):
            x = np.empty(shape, dtype=np.float32)
            enc = codec.encode(x)
            assert enc.shape == shape
            out = codec.decode(enc)
            assert out.shape == shape and out.size == 0
            assert codec.max_abs_error(x) == 0.0
            assert codec.error_bound(x) >= 0.0
            assert codec.wire_bytes(0) == 0

    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_error_bound_dominates_observed_error(self, rng, name):
        codec = TensorCodec(name)
        for scale in (1e-3, 1.0, 1e3):
            x = (rng.standard_normal((32, 32)) * scale).astype(np.float32)
            assert codec.max_abs_error(x) <= codec.error_bound(x)
        if codec.lossless:
            assert codec.error_bound(rng.standard_normal((4, 4))
                                     .astype(np.float32)) == 0.0

    def test_special_values_survive_lossless(self):
        x = np.array([0.0, -0.0, np.inf, -np.inf, np.nan,
                      np.float32(1e-45), 3.14], dtype=np.float32)
        for name in ("fp32", "zlib"):
            out = TensorCodec(name).round_trip(x)
            assert out.tobytes() == x.tobytes()

    def test_decode_any_round_trips_every_codec(self, rng):
        from repro.network.codec import decode_any

        x = rng.standard_normal((5, 7)).astype(np.float32)
        for name in ALL_CODECS:
            codec = TensorCodec(name)
            out = decode_any(codec.encode(x))
            assert float(np.abs(out - x).max()) <= codec.error_bound(x)


class TestDecisionImpact:
    def test_compression_shifts_point_earlier(self, trained_report):
        """Cheaper uploads never push the partition point later."""
        graph = build_model("squeezenet")
        points = {}
        for name in ("fp32", "fp16", "int8"):
            engine = LoADPartEngine(
                graph, trained_report.user_predictor, trained_report.edge_predictor,
                upload_codec=TensorCodec(name),
            )
            points[name] = engine.decide(4e6).point
        assert points["int8"] <= points["fp16"] <= points["fp32"]

    def test_int8_rescues_low_bandwidth_offloading(self, trained_report):
        """At 2 Mbps SqueezeNet is local with fp32 uploads but can offload
        partially once uploads shrink 4x."""
        graph = build_model("squeezenet")
        fp32 = LoADPartEngine(graph, trained_report.user_predictor,
                              trained_report.edge_predictor)
        int8 = LoADPartEngine(graph, trained_report.user_predictor,
                              trained_report.edge_predictor,
                              upload_codec=TensorCodec("int8"))
        n = fp32.num_nodes
        assert fp32.decide(2e6).point == n
        assert int8.decide(2e6).point < n
