"""Branch-parallel plans: differential bit-identity and concurrency safety.

The parallel contract is strict: a plan compiled with
``ParallelConfig(threads=t)`` must produce output **byte-for-byte equal**
to the serial planned backend (and therefore to the naive backend) for
every model, batch size, partition point and thread count.  Only the
interleaving of independent chains may change — never a kernel, never a
reduction order.  The concurrency layer (plan caches, the per-plan
execution lock) is hammered from real threads.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.graph.partitioner import GraphPartitioner
from repro.models import build_model
from repro.nn import GraphExecutor, SegmentExecutor
from repro.nn.parallel import (
    PARALLEL_THREADS_ENV,
    CompileOnceCache,
    ParallelConfig,
    ParallelPlanRunner,
    default_parallelism,
)
from repro.nn.plan import GraphPlan
from repro.runtime.multi import MultiClientSystem
from repro.runtime.server import EdgeServer
from repro.runtime.system import OffloadingSystem, SystemConfig
from tests.helpers import (
    SWEEP_ZOO,
    assert_per_sample_bit_identical,
    naive_reference,
    sample_inputs,
    sampled_points,
)

THREAD_COUNTS = (1, 2, 8)


class TestParallelZooSweep:
    """parallel == serial planned == naive, byte for byte, across the zoo."""

    @pytest.mark.parametrize("batch", [1, 4])
    @pytest.mark.parametrize("model_name", SWEEP_ZOO)
    def test_full_graph_bit_identical(self, model_name, batch):
        graph = build_model(model_name)
        serial = GraphExecutor(graph, seed=0, backend="planned", batch=batch)
        # serial planned == naive, per sample (the established contract) ...
        out_serial = assert_per_sample_bit_identical(graph, serial, batch)
        # ... and parallel == serial planned, for every thread count.
        for threads in THREAD_COUNTS:
            parallel = GraphExecutor(
                graph, seed=0, params=serial.params, backend="planned",
                batch=batch, parallelism=ParallelConfig(threads=threads),
            )
            xs = sample_inputs(graph, batch)
            x = np.concatenate(xs, axis=0) if batch > 1 else xs[0]
            out = parallel.run(x)
            assert out.tobytes() == out_serial.tobytes(), \
                f"{model_name} batch={batch} threads={threads} diverged"
            # Workspace reuse across runs must stay deterministic too.
            assert parallel.run(x).tobytes() == out_serial.tobytes()

    @pytest.mark.parametrize("model_name", SWEEP_ZOO)
    def test_partitioned_segments_bit_identical(self, model_name):
        graph = build_model(model_name)
        partitioner = GraphPartitioner(graph)
        x = sample_inputs(graph, 1)[0]
        naive_full = naive_reference(graph, GraphExecutor(
            graph, seed=0, backend="planned").params)
        params = naive_full._params
        for point in sampled_points(graph, count=2):
            partitioned = partitioner.partition(point)
            # Head: naive vs serial planned vs parallel.
            head_naive = SegmentExecutor(partitioned.head, params=params)
            boundary = {name: x for name in partitioned.head.boundary_inputs}
            head_ref = head_naive.run(boundary)
            head_par = SegmentExecutor(
                partitioned.head, params=params, backend="planned",
                parallelism=ParallelConfig(threads=2),
            ).run(boundary)
            for name, ref in head_ref.items():
                assert np.array_equal(head_par[name], ref), \
                    f"{model_name} head point={point} tensor {name}"
            # Tail: fed by the head's transfers, swept over thread counts.
            transfers = {
                name: (x if name == graph.input_name else head_ref[name])
                for name in partitioned.transfer_specs
            }
            tail_boundary = {
                name: transfers[name]
                for name in partitioned.tail.boundary_inputs
            }
            tail_ref = SegmentExecutor(
                partitioned.tail, params=params).run(tail_boundary)
            tail_serial = SegmentExecutor(
                partitioned.tail, params=params, backend="planned",
            ).run(tail_boundary)
            for threads in THREAD_COUNTS:
                tail_par = SegmentExecutor(
                    partitioned.tail, params=params, backend="planned",
                    parallelism=ParallelConfig(threads=threads),
                ).run(tail_boundary)
                for name, ref in tail_ref.items():
                    assert np.array_equal(tail_serial[name], ref)
                    assert tail_par[name].tobytes() == tail_serial[name].tobytes(), \
                        f"{model_name} tail point={point} threads={threads} {name}"

    def test_branchy_models_slice_into_many_chains(self):
        for name, expect_parallel in (("squeezenet", True), ("inception_v3", True),
                                      ("resnet18", True), ("alexnet", False)):
            plan = GraphPlan(build_model(name), parallel=ParallelConfig(threads=2))
            assert plan.chain_info is not None
            if expect_parallel:
                assert plan.stats.chains > 1, name
            else:
                assert plan.stats.chains == 1, name

    def test_serial_compile_is_untouched_by_chain_analysis(self):
        """parallel=None keeps the exact serial allocation (no regions,
        no pinning) — the committed BENCH_executor numbers depend on it."""
        plan = GraphPlan(build_model("squeezenet"))
        assert plan.stats.pinned_buffers == 0
        assert plan.chain_info is not None  # analysis still observable


class TestParallelKnobs:
    def test_naive_backend_rejects_parallelism(self):
        graph = build_model("alexnet")
        with pytest.raises(ValueError, match="planned"):
            GraphExecutor(graph, backend="naive",
                          parallelism=ParallelConfig(threads=2))

    def test_threads_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelConfig(threads=0)

    def test_env_default_applies_to_planned_only(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_THREADS_ENV, "3")
        assert default_parallelism() == ParallelConfig(threads=3)
        graph = build_model("alexnet")
        planned = GraphExecutor(graph, backend="planned")
        assert planned.parallelism == ParallelConfig(threads=3)
        naive = GraphExecutor(graph, backend="naive")
        assert naive.parallelism is None

    def test_env_unset_or_zero_means_serial(self, monkeypatch):
        monkeypatch.delenv(PARALLEL_THREADS_ENV, raising=False)
        assert default_parallelism() is None
        monkeypatch.setenv(PARALLEL_THREADS_ENV, "0")
        assert default_parallelism() is None

    def test_env_garbage_raises(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_THREADS_ENV, "many")
        with pytest.raises(ValueError, match=PARALLEL_THREADS_ENV):
            default_parallelism()

    def test_system_config_requires_planned_backend(self):
        with pytest.raises(ValueError, match="planned"):
            SystemConfig(backend="naive", parallelism=ParallelConfig(threads=2))

    def test_runner_validates_chain_deps(self):
        with pytest.raises(ValueError):
            ParallelPlanRunner([[lambda: None]], [{0}], threads=2)  # self-dep
        with pytest.raises(ValueError):
            ParallelPlanRunner([[lambda: None]], [{5}], threads=2)  # dangling

    def test_runner_propagates_chain_errors(self):
        def boom():
            raise RuntimeError("kernel exploded")

        runner = ParallelPlanRunner([[boom], [lambda: None]], [set(), set()],
                                    threads=2)
        with pytest.raises(RuntimeError, match="kernel exploded"):
            runner.run()


class TestCompileOnceCache:
    def test_exactly_one_build_per_key_under_contention(self):
        cache = CompileOnceCache()
        built = []
        build_lock = threading.Lock()
        barrier = threading.Barrier(16)

        def factory(key):
            with build_lock:
                built.append(key)
            return object()

        def worker(i):
            barrier.wait()
            key = i % 4
            return key, cache.get_or_create(key, lambda: factory(key))

        with ThreadPoolExecutor(max_workers=16) as pool:
            results = list(pool.map(worker, range(16)))

        assert sorted(built) == [0, 1, 2, 3]  # exactly one build per key
        assert cache.builds == 4 and cache.hits == 12
        by_key = {}
        for key, value in results:
            # No torn state: every caller of a key sees the same object.
            assert by_key.setdefault(key, value) is value

    def test_failed_build_propagates_and_retries(self):
        cache = CompileOnceCache()
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) == 1:
                raise OSError("transient")
            return "ok"

        with pytest.raises(OSError):
            cache.get_or_create("k", flaky)
        assert "k" not in cache
        assert cache.get_or_create("k", flaky) == "ok"
        assert "k" in cache

    def test_server_plan_cache_compiles_once_per_key(self, squeezenet_engine):
        server = EdgeServer(squeezenet_engine, backend="planned",
                            functional=True,
                            parallelism=ParallelConfig(threads=2))
        n = squeezenet_engine.num_nodes
        keys = [(n // 3, 1), (n // 3, 2), (2 * n // 3, 1)]
        barrier = threading.Barrier(12)

        def worker(i):
            barrier.wait()
            point, batch = keys[i % len(keys)]
            return (point, batch), server._tail_executor(point, batch)

        with ThreadPoolExecutor(max_workers=12) as pool:
            results = list(pool.map(worker, range(12)))

        assert server._tail_executors.builds == len(keys)
        by_key = {}
        for key, executor in results:
            assert by_key.setdefault(key, executor) is executor

    def test_concurrent_tail_execution_is_deterministic(self, squeezenet_engine):
        """Many threads through one cached parallel plan: the per-plan
        execution lock must keep every result equal to a solo run."""
        server = EdgeServer(squeezenet_engine, backend="planned",
                            functional=True,
                            parallelism=ParallelConfig(threads=2))
        graph = squeezenet_engine.graph
        point = squeezenet_engine.num_nodes // 2
        partitioned = server.cache.get(point)
        rng = np.random.default_rng(9)
        boundaries = []
        for _ in range(8):
            boundaries.append({
                name: rng.standard_normal(spec.shape).astype(np.float32)
                for name, spec in partitioned.tail.boundary_inputs.items()
            })
        refs = [
            SegmentExecutor(partitioned.tail, params=server.model_params).run(b)
            for b in boundaries
        ]
        executor = server._tail_executor(point)
        barrier = threading.Barrier(8)

        def worker(i):
            barrier.wait()
            return executor.run(boundaries[i])

        with ThreadPoolExecutor(max_workers=8) as pool:
            outs = list(pool.map(worker, range(8)))
        out_name = graph.output_name
        for out, ref in zip(outs, refs):
            assert np.array_equal(out[out_name], ref[out_name])


class TestFleetReproducibility:
    """Same seed => identical FleetResult regardless of thread count."""

    def _run(self, engine, parallelism):
        config = SystemConfig(
            seed=4, policy="full", functional=True, backend="planned",
            parallelism=parallelism,
        )
        system = MultiClientSystem(engine, 3, config=config)
        result = system.run(0.4)
        outputs = tuple(
            c.last_output.tobytes() if c.last_output is not None else None
            for c in system.clients
        )
        return result, outputs

    def test_fleet_identical_across_thread_counts(self, squeezenet_engine):
        base, base_outputs = self._run(squeezenet_engine, None)
        assert base.total_requests > 0
        for threads in (2, 8):
            result, outputs = self._run(squeezenet_engine,
                                        ParallelConfig(threads=threads))
            assert outputs == base_outputs
            assert len(result.timelines) == len(base.timelines)
            for got, want in zip(result.timelines, base.timelines):
                assert [r.request_id for r in got] == [r.request_id for r in want]
                assert [r.partition_point for r in got] == \
                    [r.partition_point for r in want]
                assert [r.total_s for r in got] == [r.total_s for r in want]

    def test_single_system_identical_across_thread_counts(self, squeezenet_engine):
        def run(parallelism):
            system = OffloadingSystem(squeezenet_engine, config=SystemConfig(
                seed=11, backend="planned", functional=True,
                parallelism=parallelism,
            ))
            timeline = system.run(0.5, max_requests=8)
            out = system.device.last_output
            return timeline, out.tobytes() if out is not None else None

        base_tl, base_out = run(None)
        par_tl, par_out = run(ParallelConfig(threads=4))
        assert par_out == base_out
        assert [r.total_s for r in par_tl] == [r.total_s for r in base_tl]
        assert [r.partition_point for r in par_tl] == \
            [r.partition_point for r in base_tl]
