"""Early-exit branches: structure pins and byte-identity sweeps.

Two contracts are pinned here.  First, the *shape* of an exit set: the
final branch is the backbone object itself, early branches are strict
prefixes (ancestor closure + head) with nondecreasing accuracy proxies,
and the zoo families declare well-formed sets.  Second, the *bit-level*
guarantee that makes ``sla_s=None`` degenerate identity structural: a
model built through the exit path executes byte-identically to the plain
model at the final exit, across backends, batch sizes and thread counts,
and every early-exit head graph is itself backend-stable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.exits import (
    ExitSpec,
    build_exit_branches,
    build_exit_graph,
    validate_exits,
)
from repro.graph.graph import GraphError
from repro.models import build_exit_model, build_model, list_exit_models
from repro.nn import GraphExecutor
from repro.nn.parallel import ParallelConfig

from tests.helpers import sample_inputs, assert_per_sample_bit_identical

EXIT_FAMILIES = list_exit_models()


class TestExitSpec:
    def test_accuracy_must_be_a_proxy(self):
        with pytest.raises(ValueError, match="accuracy proxy"):
            ExitSpec(attach="x", accuracy=0.0)
        with pytest.raises(ValueError, match="accuracy proxy"):
            ExitSpec(attach="x", accuracy=1.5)

    def test_head_channels_must_be_positive(self):
        with pytest.raises(ValueError, match="head_channels"):
            ExitSpec(attach="x", accuracy=0.5, head_channels=0)


class TestBuildExitGraph:
    def test_head_structure_on_conv_attach(self):
        backbone = build_model("squeezenet")
        attach = backbone.topological_order()[3]
        g = build_exit_graph(backbone, ExitSpec(attach=attach, accuracy=0.5),
                             "exit0", num_classes=10)
        # conv1x1 + bias + relu -> global pool -> flatten -> fc + bias head.
        for suffix in ("conv", "bias", "relu", "pool", "flat", "fc", "fcbias"):
            assert f"exit0.{suffix}" in g.nodes
        assert g.output_name == "exit0.fcbias"
        assert g.node("exit0.fcbias").output.shape[-1] == 10

    def test_prefix_is_the_ancestor_closure(self):
        backbone = build_model("resnet18")
        order = backbone.topological_order()
        attach = order[len(order) // 3]
        g = build_exit_graph(backbone, ExitSpec(attach=attach, accuracy=0.5),
                             "e", num_classes=10)
        kept = [n for n in g.topological_order() if not n.startswith("e.")]
        # Every kept node is a backbone node under its original name with
        # identical op/attrs — per-name parameter seeding hinges on this.
        for name in kept:
            assert backbone.node(name).op == g.node(name).op
            assert backbone.node(name).attrs == g.node(name).attrs
        assert attach in kept
        assert len(kept) < len(order)

    def test_unknown_attach_raises(self):
        backbone = build_model("squeezenet")
        with pytest.raises(GraphError, match="not in"):
            build_exit_graph(backbone, ExitSpec(attach="nope", accuracy=0.5),
                             "e", num_classes=10)


class TestBuildExitBranches:
    def _specs(self, backbone, count=2):
        order = backbone.topological_order()
        step = len(order) // (count + 1)
        return [ExitSpec(attach=order[(i + 1) * step], accuracy=0.4 + 0.1 * i)
                for i in range(count)]

    def test_final_branch_is_the_backbone_object(self):
        backbone = build_model("squeezenet")
        branches = build_exit_branches(backbone, self._specs(backbone), 0.7)
        assert branches[-1].graph is backbone
        assert branches[-1].is_final
        assert branches[-1].attach is None
        assert [b.index for b in branches] == list(range(len(branches)))

    def test_specs_rank_by_backbone_position(self):
        backbone = build_model("squeezenet")
        specs = self._specs(backbone)
        shuffled = list(reversed(specs))
        shuffled[0], shuffled[-1] = (
            ExitSpec(shuffled[0].attach, specs[-1].accuracy),
            ExitSpec(shuffled[-1].attach, specs[0].accuracy))
        branches = build_exit_branches(backbone, shuffled, 0.7)
        assert [b.attach for b in branches[:-1]] == [s.attach for s in specs]

    def test_duplicate_attach_rejected(self):
        backbone = build_model("squeezenet")
        spec = self._specs(backbone, count=1)[0]
        with pytest.raises(ValueError, match="duplicate"):
            build_exit_branches(backbone, [spec, spec], 0.7)

    def test_decreasing_accuracy_rejected(self):
        backbone = build_model("squeezenet")
        specs = self._specs(backbone)
        with pytest.raises(ValueError, match="nondecreasing"):
            build_exit_branches(backbone, specs, final_accuracy=0.1)

    def test_validate_exits_pins(self):
        backbone = build_model("squeezenet")
        branches = build_exit_branches(backbone, self._specs(backbone), 0.7)
        assert validate_exits(backbone, branches) == branches
        with pytest.raises(ValueError, match="0..m-1"):
            validate_exits(backbone, branches[::-1])
        with pytest.raises(ValueError, match="backbone itself"):
            validate_exits(backbone, branches[:-1])
        other = build_model("squeezenet")
        with pytest.raises(ValueError, match="backbone itself"):
            validate_exits(other, branches)


class TestZooExitModels:
    def test_exit_families_cover_three_zoo_families(self):
        assert set(EXIT_FAMILIES) == {"resnet18", "mobilenet_v1", "squeezenet"}

    @pytest.mark.parametrize("name", EXIT_FAMILIES)
    def test_declared_sets_are_well_formed(self, name):
        graph, branches = build_exit_model(name)
        assert validate_exits(graph, branches) == branches
        assert len(branches) >= 3  # >= 2 early exits + the final exit
        n = len(graph.topological_order())
        for b in branches[:-1]:
            assert len(b.graph.topological_order()) < n
            b.graph.validate()
        accs = [b.accuracy for b in branches]
        assert accs == sorted(accs)
        assert 0.0 < accs[0] <= accs[-1] <= 1.0

    @pytest.mark.parametrize("name", EXIT_FAMILIES)
    def test_exit_engine_wiring(self, name):
        from repro.experiments.context import default_exit_engine

        engine = default_exit_engine(name)
        assert engine.has_exits
        assert engine.num_exits >= 3
        assert engine.exit_engine(engine.num_exits - 1) is engine
        assert engine.exit_accuracy() == engine.exit_accuracy(engine.num_exits - 1)
        for e in range(engine.num_exits - 1):
            sub = engine.exit_engine(e)
            assert sub.num_nodes < engine.num_nodes
            assert engine.exit_accuracy(e) <= engine.exit_accuracy(e + 1)


class TestFinalExitByteIdentity:
    """The exit build path must not perturb the backbone: executing the
    final exit equals executing the plain model byte for byte."""

    @pytest.mark.parametrize("name", EXIT_FAMILIES)
    @pytest.mark.parametrize("backend,batch,threads", [
        ("naive", 1, None),
        ("planned", 1, None),
        pytest.param("planned", 2, 2, marks=pytest.mark.slow),
    ])
    def test_final_exit_matches_plain_model(self, name, backend, batch, threads):
        graph, branches = build_exit_model(name)
        assert branches[-1].graph is graph
        par = None if threads is None else ParallelConfig(threads=threads)
        via_exit = GraphExecutor(branches[-1].graph, seed=0, backend=backend,
                                 batch=batch, parallelism=par)
        plain = GraphExecutor(build_model(name), seed=0, backend=backend,
                              batch=batch, parallelism=par)
        xs = sample_inputs(graph, batch)
        x = np.concatenate(xs, axis=0) if batch > 1 else xs[0]
        assert np.array_equal(via_exit.run(x), plain.run(x))

    def test_early_exit_heads_are_backend_stable(self):
        """Every squeezenet early-exit graph: planned batched threaded run
        == independent naive batch-1 runs, per sample, bit for bit."""
        graph, branches = build_exit_model("squeezenet")
        for b in branches[:-1]:
            ex = GraphExecutor(b.graph, seed=0, backend="planned", batch=2,
                               parallelism=ParallelConfig(threads=2))
            assert_per_sample_bit_identical(b.graph, ex, 2)
