"""Block analysis (§III-D): candidate reduction and the InceptionV3 claim."""


from repro.core.blocks import block_cut_report, candidate_points
from repro.models import build_model


class TestCandidatePoints:
    def test_chain_has_all_points(self, chain_graph):
        n = len(chain_graph)
        assert candidate_points(chain_graph) == list(range(n + 1))

    def test_diamond_excludes_inside_block(self, diamond_graph):
        points = candidate_points(diamond_graph)
        n = len(diamond_graph)
        assert 0 in points and n in points
        # Positions 2 and 3 are inside the two-branch block (width 2).
        assert 2 not in points
        assert 3 not in points

    def test_resnet_candidates_are_block_boundaries(self):
        g = build_model("resnet18")
        points = candidate_points(g)
        widths = {c.index: c.width for c in g.cuts()}
        for p in points:
            assert widths[p] <= 1

    def test_candidates_always_include_endpoints(self):
        for model in ("squeezenet", "resnet50", "xception"):
            g = build_model(model)
            points = candidate_points(g)
            assert points[0] == 0 and points[-1] == len(g)

    def test_optimal_point_is_always_a_candidate(self, alexnet_engine):
        """The §III-D claim, checked on the decision engine's own landscape."""
        g = alexnet_engine.graph
        candidates = set(candidate_points(g))
        for bw in (1e6, 4e6, 8e6, 32e6):
            for k in (1.0, 10.0, 100.0):
                assert alexnet_engine.decide(bw, k=k).point in candidates

    def test_squeezenet_optimal_is_candidate(self, squeezenet_engine):
        candidates = set(candidate_points(squeezenet_engine.graph))
        for bw in (1e6, 8e6, 64e6):
            assert squeezenet_engine.decide(bw).point in candidates


class TestBlockCutReport:
    def test_chain_has_no_multi_cuts(self, chain_graph):
        report = block_cut_report(chain_graph)
        assert report.multi_points == []
        assert report.min_multi_cut_bytes is None
        assert not report.inside_cuts_beat_input

    def test_diamond_report(self, diamond_graph):
        report = block_cut_report(diamond_graph)
        assert len(report.multi_points) > 0
        assert report.min_multi_cut_bytes is not None

    def test_inception_inside_cuts_are_large(self):
        """§III-D: cutting inside Inception blocks transmits more than
        cutting at block boundaries — the basis for the linear scan."""
        g = build_model("inception_v3")
        report = block_cut_report(g)
        assert report.min_multi_cut_bytes is not None
        # Inside-block cuts are much larger than the best block-boundary cut.
        assert report.min_multi_cut_bytes > 2 * report.min_width1_cut_bytes

    def test_inception_last_block_cuts_beat_nothing(self):
        """The paper's §III-D evidence (1.25 MB inside the last block vs a
        1.02 MiB input): in our enumeration the absolute bytes differ, but
        the operative claim holds — every cut inside the last Inception
        block transmits more than the cheapest block-boundary cut, so no
        inside cut can be optimal."""
        g = build_model("inception_v3")
        report = block_cut_report(g)
        cuts = g.cuts()
        last_block = [c for c in cuts if c.width > 1
                      and any(name.startswith("mixedC2") for name in c.crossing)]
        assert last_block
        assert min(c.upload_bytes for c in last_block) > report.min_width1_cut_bytes

    def test_resnet_inside_cuts_cost_more_than_boundaries(self):
        g = build_model("resnet50")
        report = block_cut_report(g)
        assert report.min_multi_cut_bytes >= report.min_width1_cut_bytes
