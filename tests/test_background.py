"""Load levels and schedules."""

import pytest

from repro.hardware.background import (
    IDLE,
    LOAD_LEVELS,
    U100H,
    U100L,
    LoadSchedule,
    fig2_levels,
    fig9_schedule,
)


class TestLoadLevels:
    def test_registry_names(self):
        assert set(LOAD_LEVELS) == {"0%", "30%", "50%", "70%", "90%", "100%(l)", "100%(h)"}

    def test_saturation_flags(self):
        assert U100L.is_saturated and U100H.is_saturated
        assert not IDLE.is_saturated
        assert not LOAD_LEVELS["90%"].is_saturated

    def test_equal_utilisation_different_contention(self):
        """The paper's key distinction between 100%(l) and 100%(h)."""
        assert U100L.utilization == U100H.utilization == 1.0
        assert U100H.wait_mean_s > U100L.wait_mean_s
        assert U100H.contend_prob > U100L.contend_prob

    def test_fig2_levels_order(self):
        names = [lvl.name for lvl in fig2_levels()]
        assert names == ["30%", "50%", "70%", "90%", "100%(l)", "100%(h)"]

    def test_contention_grows_with_utilisation(self):
        ordered = ["0%", "30%", "50%", "70%", "90%", "100%(l)", "100%(h)"]
        probs = [LOAD_LEVELS[n].contend_prob for n in ordered]
        assert probs == sorted(probs)


class TestLoadSchedule:
    def test_lookup(self):
        schedule = LoadSchedule([(0.0, IDLE), (10.0, U100L)])
        assert schedule.level_at(0.0) is IDLE
        assert schedule.level_at(9.999) is IDLE
        assert schedule.level_at(10.0) is U100L
        assert schedule.level_at(1e9) is U100L

    def test_negative_time_clamps_to_first(self):
        schedule = LoadSchedule([(0.0, IDLE), (10.0, U100L)])
        assert schedule.level_at(-5.0) is IDLE

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError):
            LoadSchedule([(1.0, IDLE)])

    def test_must_be_sorted(self):
        with pytest.raises(ValueError):
            LoadSchedule([(0.0, IDLE), (20.0, U100L), (10.0, U100H)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LoadSchedule([])

    def test_fig9_schedule_shape(self):
        """0% -> ramp -> 100%(l) -> 100%(h) -> idle recovery."""
        schedule = fig9_schedule()
        assert schedule.level_at(0.0).utilization == 0.0
        assert schedule.level_at(120.0).name == "100%(l)"
        assert schedule.level_at(180.0).name == "100%(h)"
        assert schedule.level_at(250.0).utilization == 0.0
        names = [lvl.name for _, lvl in schedule.steps]
        assert names[0] == "0%" and names[-1] == "0%"
