"""Layer fusion (§VI extension): detection, rewriting, equivalence."""

import numpy as np
import pytest

from repro.graph.fusion import detect_fusion_groups, fuse_graph, fusion_summary
from repro.graph.partitioner import GraphPartitioner
from repro.models import build_model
from repro.nn.executor import GraphExecutor, SegmentExecutor
from repro.profiling.features import profile_graph
from repro.profiling.offline import OfflineProfiler


class TestDetection:
    def test_chain_groups(self, chain_graph):
        groups = detect_fusion_groups(chain_graph)
        # conv+bias+relu fuse; pool and flat stay; fc absorbs nothing after it.
        assert ["conv", "bias", "relu"] in groups
        assert ["pool"] in groups and ["flat"] in groups

    def test_groups_cover_all_nodes_once(self, diamond_graph, fire_graph):
        for graph in (diamond_graph, fire_graph):
            groups = detect_fusion_groups(graph)
            flat = [n for g in groups for n in g]
            assert sorted(flat) == sorted(graph.nodes)

    def test_multi_consumer_intermediate_blocks_fusion(self):
        """The squeeze relu feeds two branches: fusion stops at the relu
        itself (which is a single consumer of the bias output), never past."""
        g = build_model("squeezenet")
        groups = detect_fusion_groups(g)
        by_anchor = {grp[0]: grp for grp in groups}
        assert by_anchor["fire2.squeeze.conv"] == [
            "fire2.squeeze.conv", "fire2.squeeze.post", "fire2.squeeze.relu"
        ]

    def test_branch_point_not_absorbed(self):
        from repro.graph.builder import GraphBuilder

        b = GraphBuilder("g", (1, 4, 8, 8))
        c = b.conv(b.input, 4, kernel=1, name="c")
        # bias output consumed by two reLUs: fusion must stop at the conv.
        bias = b.bias_add(c, name="bias")
        r1 = b.relu(bias, name="r1")
        r2 = b.sigmoid(bias, name="r2")
        out = b.add(r1, r2, name="out")
        b.output(out)
        g = b.build()
        groups = detect_fusion_groups(g)
        by_anchor = {grp[0]: grp for grp in groups}
        assert by_anchor["c"] == ["c", "bias"]

    def test_alexnet_summary(self):
        original, fused, with_epilogue = fusion_summary(build_model("alexnet"))
        assert original == 27
        assert fused == 12
        assert with_epilogue == 8  # 5 conv stacks + 3 fc stacks


class TestRewriting:
    def test_fused_graph_validates(self):
        for model in ("alexnet", "squeezenet", "resnet18"):
            fuse_graph(build_model(model)).validate()

    def test_flops_preserved_exactly(self):
        for model in ("alexnet", "vgg16", "resnet18", "squeezenet", "xception"):
            g = build_model(model)
            assert fuse_graph(g).total_flops() == g.total_flops(), model

    def test_params_preserved_exactly(self):
        g = build_model("alexnet")
        assert fuse_graph(g).total_param_bytes() == g.total_param_bytes()

    def test_output_shape_preserved(self):
        g = build_model("squeezenet")
        assert fuse_graph(g).output_spec == g.output_spec

    def test_node_count_shrinks_substantially(self):
        g = build_model("vgg16")
        fg = fuse_graph(g)
        assert len(fg) < 0.6 * len(g)

    def test_epilogue_attrs(self):
        fg = fuse_graph(build_model("alexnet"))
        fused_nodes = [n for n in fg.nodes.values() if n.op == "fused_conv2d"]
        assert len(fused_nodes) == 5
        assert all(n.attrs["epilogue"] == ("bias_add", "relu") for n in fused_nodes)

    def test_fused_names_keep_downstream_references(self):
        g = build_model("alexnet")
        fg = fuse_graph(g)
        # The graph output (fc8.bias) is itself absorbed into fused_matmul,
        # whose node keeps the tail name so the output reference is intact.
        assert fg.output_name == g.output_name

    def test_transmission_sizes_subset(self):
        """Fused cut sizes appear among the original cut sizes (fused cuts
        land on group boundaries, which exist in the unfused graph too)."""
        g = build_model("alexnet")
        fg = fuse_graph(g)
        assert set(fg.transmission_sizes()) <= set(g.transmission_sizes())


class TestExecutionEquivalence:
    @pytest.mark.parametrize("model", ["alexnet", "squeezenet", "resnet18"])
    def test_fused_matches_unfused(self, model, rng):
        g = build_model(model)
        fg = fuse_graph(g)
        x = rng.standard_normal(g.input_spec.shape).astype(np.float32)
        a = GraphExecutor(g, seed=11).run(x)
        b = GraphExecutor(fg, seed=11).run(x)
        np.testing.assert_allclose(a, b, rtol=1e-5, atol=1e-6)

    def test_partitioned_fused_execution(self, rng):
        g = build_model("alexnet")
        fg = fuse_graph(g)
        x = rng.standard_normal(g.input_spec.shape).astype(np.float32)
        executor = GraphExecutor(fg, seed=4)
        ref = executor.run(x)
        part = GraphPartitioner(fg).partition(5)
        head = SegmentExecutor(part.head, params=executor.params)
        tail = SegmentExecutor(part.tail, params=executor.params)
        boundary = head.run({fg.input_name: x})
        got = tail.run(boundary)[fg.output_name]
        np.testing.assert_allclose(got, ref, rtol=1e-5, atol=1e-6)


class TestCostModels:
    def test_fusion_saves_time_on_both_sides(self):
        from repro.hardware import DeviceModel, GpuModel

        g = build_model("resnet18")
        fg = fuse_graph(g)
        dev, gpu = DeviceModel(), GpuModel()
        assert dev.mean_graph_time(profile_graph(fg)) < dev.mean_graph_time(profile_graph(g))
        assert gpu.mean_graph_time(profile_graph(fg)) < gpu.mean_graph_time(profile_graph(g))

    def test_fused_profiles_carry_epilogue(self):
        fg = fuse_graph(build_model("alexnet"))
        profiles = profile_graph(fg)
        fused = [p for p in profiles if p.category == "conv_fused"]
        assert fused and all(p.epilogue_len == 2 for p in fused)
        assert all(p.anchor_flops < p.flops for p in fused)


class TestFusedPrediction:
    @pytest.fixture(scope="class")
    def fused_report(self):
        return OfflineProfiler(samples_per_category=120, seed=5, include_fused=True).run()

    def test_supports_fused_flag(self, fused_report, trained_report):
        assert fused_report.user_predictor.supports_fused
        assert not trained_report.user_predictor.supports_fused

    def test_plain_predictor_rejects_fused_graphs(self, trained_report):
        profiles = profile_graph(fuse_graph(build_model("alexnet")))
        fused_profile = next(p for p in profiles if p.category == "conv_fused")
        with pytest.raises(KeyError, match="include_fused"):
            trained_report.user_predictor.predict(fused_profile)

    def test_fused_engine_decisions(self, fused_report):
        from repro.core import LoADPartEngine

        fg = fuse_graph(build_model("alexnet"))
        engine = LoADPartEngine(fg, fused_report.user_predictor, fused_report.edge_predictor)
        assert engine.decide(1e6).point == engine.num_nodes       # local
        assert 0 <= engine.decide(64e6).point <= 4                # early offload

    def test_fused_json_round_trip(self, fused_report):
        from repro.profiling.predictor import LatencyPredictor

        restored = LatencyPredictor.from_json(fused_report.edge_predictor.to_json())
        assert restored.supports_fused


class TestFusedSerialisation:
    def test_fused_graph_round_trips(self):
        from repro.graph.serialize import graph_from_json, graph_to_json

        fg = fuse_graph(build_model("alexnet"))
        restored = graph_from_json(graph_to_json(fg))
        assert restored.total_flops() == fg.total_flops()
        assert restored.node(restored.topological_order()[0]).attrs.get("epilogue") \
            == fg.node(fg.topological_order()[0]).attrs.get("epilogue")
