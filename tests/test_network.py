"""Network substrate: channel, traces, bandwidth estimator."""

import numpy as np
import pytest

from repro.network.channel import Channel, NetworkParams
from repro.network.estimator import BandwidthEstimator
from repro.network.traces import (
    FIG6_BANDWIDTHS_MBPS,
    ConstantTrace,
    RandomWalkTrace,
    StepTrace,
    fig6_trace,
)


class TestTraces:
    def test_constant(self):
        trace = ConstantTrace(8e6)
        assert trace.upload_at(0) == trace.upload_at(1e6) == 8e6
        assert trace.download_at(5) == 8e6

    def test_constant_asymmetric(self):
        trace = ConstantTrace(8e6, download_bps=16e6)
        assert trace.download_at(0) == 16e6

    def test_constant_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantTrace(0)

    def test_step_lookup(self):
        trace = StepTrace([(0.0, 8e6), (30.0, 4e6)])
        assert trace.upload_at(29.9) == 8e6
        assert trace.upload_at(30.0) == 4e6

    def test_step_validation(self):
        with pytest.raises(ValueError):
            StepTrace([(1.0, 8e6)])
        with pytest.raises(ValueError):
            StepTrace([(0.0, 8e6), (10.0, -1)])
        with pytest.raises(ValueError):
            StepTrace([])

    def test_fig6_trace_sequence(self):
        trace = fig6_trace(segment_s=10.0)
        seen = [trace.upload_at(i * 10.0 + 1) / 1e6 for i in range(10)]
        assert tuple(seen) == FIG6_BANDWIDTHS_MBPS

    def test_fig6_shape_down_then_up(self):
        bws = FIG6_BANDWIDTHS_MBPS
        assert bws[0] == 8 and min(bws) == 1 and bws[-1] == 64

    def test_random_walk_bounds(self):
        trace = RandomWalkTrace(8e6, min_bps=1e6, max_bps=64e6, seed=3)
        values = [trace.upload_at(t) for t in np.linspace(0, 600, 200)]
        assert all(1e6 <= v <= 64e6 for v in values)

    def test_random_walk_deterministic(self):
        a = RandomWalkTrace(8e6, seed=5)
        b = RandomWalkTrace(8e6, seed=5)
        assert a.upload_at(100.0) == b.upload_at(100.0)

    def test_random_walk_mean_validation(self):
        with pytest.raises(ValueError):
            RandomWalkTrace(1e3, min_bps=1e6, max_bps=64e6)


class TestChannel:
    def test_mean_upload_math(self):
        channel = Channel(ConstantTrace(8e6), NetworkParams(base_latency_s=0.0))
        # 1 MB at 8 Mbps = 1 second.
        assert channel.mean_upload_time(1_000_000, 0.0) == pytest.approx(1.0)

    def test_base_latency_added(self):
        channel = Channel(ConstantTrace(8e6), NetworkParams(base_latency_s=0.01))
        assert channel.mean_upload_time(1, 0.0) > 0.01

    def test_zero_bytes_free(self):
        channel = Channel(ConstantTrace(8e6))
        assert channel.mean_upload_time(0, 0.0) == 0.0
        assert channel.mean_download_time(0, 0.0) == 0.0

    def test_negative_rejected(self):
        channel = Channel(ConstantTrace(8e6))
        with pytest.raises(ValueError):
            channel.mean_upload_time(-1, 0.0)

    def test_noisy_time_near_mean(self, rng):
        channel = Channel(ConstantTrace(8e6))
        mean = channel.mean_upload_time(500_000, 0.0)
        samples = [channel.upload_time(500_000, 0.0, rng) for _ in range(500)]
        assert np.mean(samples) == pytest.approx(mean, rel=0.02)

    def test_uses_trace_time(self):
        channel = Channel(StepTrace([(0.0, 8e6), (10.0, 1e6)]),
                          NetworkParams(base_latency_s=0.0))
        fast = channel.mean_upload_time(1_000_000, 5.0)
        slow = channel.mean_upload_time(1_000_000, 15.0)
        assert slow == pytest.approx(8 * fast)


class TestEstimator:
    def test_initial_estimate(self):
        est = BandwidthEstimator(initial_estimate_bps=8e6)
        assert est.estimate() == 8e6
        assert est.sample_count == 0

    def test_probe_updates_estimate(self):
        est = BandwidthEstimator()
        est.add_probe(0.0, probe_bytes=100_000, duration_s=0.1)  # 8 Mbps
        assert est.estimate() == pytest.approx(8e6)

    def test_median_robust_to_outlier(self):
        est = BandwidthEstimator(window_size=5)
        for t in range(4):
            est.add_probe(float(t), 100_000, 0.1)  # 8 Mbps
        est.add_probe(5.0, 100_000, 10.0)  # catastrophic outlier
        assert est.estimate() == pytest.approx(8e6)

    def test_window_evicts_old_samples(self):
        est = BandwidthEstimator(window_size=3)
        est.add_probe(0.0, 100_000, 1.0)  # 0.8 Mbps
        for t in range(3):
            est.add_probe(1.0 + t, 100_000, 0.05)  # 16 Mbps
        assert est.estimate() == pytest.approx(16e6)

    def test_passive_samples_counted(self):
        est = BandwidthEstimator()
        est.add_passive(0.0, 130_000, 0.13)
        assert est.passive_fraction == 1.0
        est.add_probe(1.0, 100_000, 0.1)
        assert est.passive_fraction == 0.5

    def test_adaptive_probe_size_tracks_estimate(self):
        est = BandwidthEstimator(probe_target_duration_s=0.05)
        est.add_probe(0.0, 100_000, 0.1)  # 8 Mbps
        low = est.next_probe_bytes()
        est2 = BandwidthEstimator(probe_target_duration_s=0.05)
        est2.add_probe(0.0, 100_000, 0.0125)  # 64 Mbps
        high = est2.next_probe_bytes()
        assert high > low
        assert low == pytest.approx(8e6 * 0.05 / 8, rel=0.01)

    def test_probe_size_clamped(self):
        est = BandwidthEstimator(min_probe_bytes=1000, max_probe_bytes=2000)
        est.add_probe(0.0, 100, 10.0)  # tiny bandwidth
        assert est.next_probe_bytes() == 1000

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            BandwidthEstimator(window_size=0)
        with pytest.raises(ValueError):
            BandwidthEstimator(initial_estimate_bps=0)
        with pytest.raises(ValueError):
            BandwidthEstimator(window_s=0.0)

    def test_degenerate_samples_ignored(self):
        # Zero-byte or zero-duration measurements come from aborted
        # transfers; they must not poison the estimator or crash it.
        est = BandwidthEstimator()
        est.add_probe(0.0, 0, 1.0)
        est.add_passive(0.0, 100, 0.0)
        est.add_passive(0.0, 100, float("inf"))
        assert est.sample_count == 0
        est.add_probe(0.0, 100_000, 0.1)
        assert est.sample_count == 1
        assert est.estimate() == pytest.approx(8e6)


class TestLinkEstimator:
    """EWMA link-latency estimator with outlier rejection (supervisor input)."""

    def _import(self):
        from repro.network.estimator import LinkEstimator
        return LinkEstimator

    def test_prior_until_first_sample(self):
        LinkEstimator = self._import()
        est = LinkEstimator(prior_s=0.02)
        assert est.estimate() == 0.02
        assert est.sample_count == 0
        est.add(0.005)
        assert est.estimate() == 0.005  # first sample seeds the mean
        assert est.prior_s == 0.02      # prior itself is immutable

    def test_converges_to_noisy_signal(self):
        LinkEstimator = self._import()
        est = LinkEstimator(prior_s=0.0, alpha=0.25)
        rng = np.random.default_rng(7)
        for _ in range(200):
            est.add(0.01 * float(rng.lognormal(sigma=0.1)))
        assert est.estimate() == pytest.approx(0.01, rel=0.15)
        assert est.rejected_count < 20  # routine noise is not "outliers"

    def test_single_outlier_rejected_after_warmup(self):
        LinkEstimator = self._import()
        est = LinkEstimator(prior_s=0.0, warmup=4)
        for _ in range(6):
            assert est.add(0.01)
        assert est.add(1.0) is False  # 100x spike: rejected
        assert est.rejected_count == 1
        assert est.estimate() == pytest.approx(0.01)
        assert est.add(0.01)          # and the stream recovers instantly

    def test_level_shift_reseeds_after_max_rejects(self):
        LinkEstimator = self._import()
        est = LinkEstimator(prior_s=0.0, warmup=4, max_consecutive_rejects=3)
        for _ in range(6):
            est.add(0.01)
        # The path really changed: 3 rejections, then the 4th sample of
        # the new regime re-seeds instead of being discarded forever.
        for _ in range(3):
            assert est.add(0.08) is False
        assert est.add(0.08) is True
        assert est.estimate() == pytest.approx(0.08)

    def test_outliers_before_warmup_are_absorbed(self):
        LinkEstimator = self._import()
        est = LinkEstimator(prior_s=0.0, warmup=4)
        assert est.add(0.01)
        assert est.add(1.0)  # only 1 sample in: no rejection basis yet
        assert est.rejected_count == 0

    def test_invalid_samples_ignored(self):
        LinkEstimator = self._import()
        est = LinkEstimator(prior_s=0.02)
        assert est.add(float("nan")) is False
        assert est.add(float("inf")) is False
        assert est.add(-0.001) is False
        assert est.sample_count == 0
        assert est.estimate() == 0.02

    def test_reset_restores_prior(self):
        LinkEstimator = self._import()
        est = LinkEstimator(prior_s=0.02)
        for _ in range(8):
            est.add(0.005)
        assert est.estimate() == pytest.approx(0.005)
        est.reset()
        assert est.estimate() == 0.02
        assert est.sample_count == 0
        assert est.rejected_count == 0

    def test_validation(self):
        LinkEstimator = self._import()
        with pytest.raises(ValueError):
            LinkEstimator(prior_s=-0.1)
        with pytest.raises(ValueError):
            LinkEstimator(alpha=0.0)
        with pytest.raises(ValueError):
            LinkEstimator(alpha=1.5)
        with pytest.raises(ValueError):
            LinkEstimator(outlier_factor=0.0)
        with pytest.raises(ValueError):
            LinkEstimator(warmup=0)
        with pytest.raises(ValueError):
            LinkEstimator(max_consecutive_rejects=0)
