"""Model zoo: structure, shapes, FLOPs, paper-specific facts."""

import pytest

from repro.models import EVALUATED_MODELS, build_model, get_model, list_models


class TestRegistry:
    def test_list_models(self):
        models = list_models()
        for name in ("alexnet", "vgg16", "resnet18", "resnet50", "resnet101",
                     "resnet152", "squeezenet", "xception", "inception_v3",
                     "mobilenet_v1", "mobilenet_v2"):
            assert name in models

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError, match="unknown model"):
            build_model("lenet")

    def test_get_model_caches(self):
        assert get_model("alexnet") is get_model("alexnet")

    def test_build_model_fresh(self):
        assert build_model("alexnet") is not build_model("alexnet")

    def test_evaluated_models_are_the_papers_six(self):
        assert set(EVALUATED_MODELS) == {
            "alexnet", "squeezenet", "vgg16", "resnet18", "resnet50", "xception"
        }


class TestInputShapes:
    """§V-A: SqueezeNet 227, Xception/Inception 299, rest 224."""

    @pytest.mark.parametrize("model,size", [
        ("alexnet", 224), ("vgg16", 224), ("resnet18", 224), ("resnet50", 224),
        ("squeezenet", 227), ("xception", 299), ("inception_v3", 299),
        ("mobilenet_v1", 224), ("mobilenet_v2", 224),
    ])
    def test_input_shape(self, model, size):
        assert build_model(model).input_spec.shape == (1, 3, size, size)

    @pytest.mark.parametrize("model", list_models())
    def test_output_is_1000_classes(self, model):
        assert build_model(model).output_spec.shape == (1, 1000)


class TestStructure:
    def test_alexnet_has_27_nodes(self):
        """Matches the paper: p=27 is local inference for AlexNet."""
        assert len(build_model("alexnet")) == 27

    def test_alexnet_partition_landmarks(self):
        g = build_model("alexnet")
        order = g.topological_order()
        assert order[3] == "maxpool1"    # p=4 cuts right after MaxPool-1
        assert order[7] == "maxpool2"    # p=8 cuts right after MaxPool-2 (Fig. 1)
        assert order[18] == "flatten"    # p=19 cuts right after Flatten

    def test_vgg16_has_13_convs(self):
        g = build_model("vgg16")
        convs = [n for n in g.nodes.values() if n.op == "conv2d"]
        assert len(convs) == 13

    def test_resnet_depths(self):
        for depth, blocks in ((18, 8), (50, 16), (101, 33), (152, 50)):
            g = build_model(f"resnet{depth}")
            adds = [n for n in g.nodes.values() if n.op == "add"]
            assert len(adds) == blocks

    def test_squeezenet_has_8_fires(self):
        g = build_model("squeezenet")
        concats = [n for n in g.nodes.values() if n.op == "concat"]
        assert len(concats) == 8

    def test_squeezenet_squeeze_cuts_are_narrow(self):
        """The squeeze bottleneck is why partial offloading pays off."""
        g = build_model("squeezenet")
        sizes = g.transmission_sizes()
        # Some interior cut must be far smaller than the input.
        assert min(sizes[1:-1]) < g.input_spec.nbytes / 5

    def test_xception_uses_dwconv(self):
        g = build_model("xception")
        dws = [n for n in g.nodes.values() if n.op == "dwconv2d"]
        assert len(dws) == 34  # 2 per sepconv block x 17 sepconvs

    def test_mobilenet_v1_structure(self):
        g = build_model("mobilenet_v1")
        dws = [n for n in g.nodes.values() if n.op == "dwconv2d"]
        assert len(dws) == 13

    def test_mobilenet_v2_residuals(self):
        g = build_model("mobilenet_v2")
        adds = [n for n in g.nodes.values() if n.op == "add"]
        assert len(adds) == 10  # inverted residuals with stride 1, equal dims

    def test_resnet_block_interior_cut_width(self):
        g = build_model("resnet18")
        widths = {c.index: c.width for c in g.cuts()}
        assert max(widths.values()) >= 2  # cuts inside residual blocks

    @pytest.mark.parametrize("model", list_models())
    def test_all_models_validate(self, model):
        build_model(model).validate()

    @pytest.mark.parametrize("model", list_models())
    def test_all_models_have_positive_flops(self, model):
        assert build_model(model).total_flops() > 1e8


class TestFlopsReference:
    """Totals against well-known literature numbers (MAC counts)."""

    @pytest.mark.parametrize("model,lo,hi", [
        ("alexnet", 0.65, 0.80),
        ("vgg16", 15.0, 16.0),
        ("resnet18", 1.7, 2.0),
        ("resnet50", 3.8, 4.3),
        ("resnet101", 7.5, 8.1),
        ("resnet152", 11.2, 11.9),
        ("inception_v3", 5.3, 6.0),
        ("xception", 8.0, 9.0),
        ("squeezenet", 0.3, 0.45),
        ("mobilenet_v1", 0.5, 0.65),
        ("mobilenet_v2", 0.28, 0.36),
    ])
    def test_gflops_in_range(self, model, lo, hi):
        assert lo <= build_model(model).total_flops() / 1e9 <= hi

    @pytest.mark.parametrize("model,lo,hi", [
        ("alexnet", 230, 260),     # ~61M params
        ("vgg16", 520, 560),       # ~138M params
        ("resnet50", 95, 110),     # ~25.5M params
        ("squeezenet", 4.5, 5.5),  # ~1.24M params
    ])
    def test_param_megabytes(self, model, lo, hi):
        assert lo <= build_model(model).total_param_bytes() / 1e6 <= hi
