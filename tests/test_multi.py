"""Multi-client fleet extension: shared server, endogenous load."""

import pytest

from repro.runtime.multi import (
    EndogenousLoad,
    MultiClientSystem,
    SharedLoadTracker,
)
from repro.runtime.system import SystemConfig


class TestSharedLoadTracker:
    def test_empty_is_idle(self):
        assert SharedLoadTracker().utilization(0.0) == 0.0

    def test_utilization_is_busy_over_window(self):
        t = SharedLoadTracker(window_s=2.0)
        t.record(0.0, 0.5)
        t.record(1.0, 0.5)
        assert t.utilization(1.0) == pytest.approx(0.5)

    def test_old_records_evicted(self):
        t = SharedLoadTracker(window_s=1.0)
        t.record(0.0, 1.0)
        assert t.utilization(5.0) == 0.0

    def test_capped_at_one(self):
        t = SharedLoadTracker(window_s=1.0)
        t.record(0.0, 10.0)
        assert t.utilization(0.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SharedLoadTracker(window_s=0.0)
        with pytest.raises(ValueError):
            SharedLoadTracker().record(0.0, -1.0)


class TestEndogenousLoad:
    def test_idle_level(self):
        load = EndogenousLoad(SharedLoadTracker())
        level = load.level_at(0.0)
        assert level.utilization == 0.0
        assert level.initial_wait_s == 0.0

    def test_contention_grows_with_utilization(self):
        tracker = SharedLoadTracker(window_s=1.0)
        load = EndogenousLoad(tracker)
        idle = load.level_at(0.0)
        tracker.record(0.0, 0.5)
        half = load.level_at(0.0)
        tracker.record(0.0, 0.5)
        full = load.level_at(0.0)
        assert idle.wait_mean_s < half.wait_mean_s < full.wait_mean_s
        assert idle.contend_prob < half.contend_prob < full.contend_prob

    def test_waits_diverge_near_saturation(self):
        tracker = SharedLoadTracker(window_s=1.0)
        load = EndogenousLoad(tracker)
        tracker.record(0.0, 0.5)
        at_half = load.level_at(0.0).wait_mean_s
        tracker.record(0.0, 0.5)
        at_full = load.level_at(0.0).wait_mean_s
        assert at_full > 4 * at_half


class TestMultiClientSystem:
    @pytest.fixture(scope="class")
    def engine(self, trained_report):
        from repro.core.engine import LoADPartEngine
        from repro.models import build_model

        return LoADPartEngine(
            build_model("resnet50"),
            trained_report.user_predictor,
            trained_report.edge_predictor,
        )

    def test_requires_clients(self, engine):
        with pytest.raises(ValueError):
            MultiClientSystem(engine, 0)

    def test_single_client_matches_offloading(self, engine):
        system = MultiClientSystem(engine, 1, config=SystemConfig(seed=1))
        result = system.run(5.0)
        assert len(result.timelines) == 1
        assert result.total_requests > 3

    def test_server_load_is_endogenous(self, engine):
        system = MultiClientSystem(engine, 24,
                                   config=SystemConfig(policy="full", seed=1))
        system.run(8.0)
        # A fleet of always-offload clients must visibly load the GPU.
        assert system.tracker.utilization(8.0) > 0.3

    def test_loadpart_fleet_self_stabilises(self, engine):
        """The headline: load-aware clients retreat to local under
        contention; load-oblivious clients pile onto the saturated GPU."""
        results = {}
        for policy in ("loadpart", "neurosurgeon"):
            system = MultiClientSystem(engine, 24,
                                       config=SystemConfig(policy=policy, seed=2))
            results[policy] = system.run(25.0)
        assert results["loadpart"].local_fraction > 0.15
        assert results["neurosurgeon"].local_fraction == 0.0
        assert results["loadpart"].mean_latency < results["neurosurgeon"].mean_latency

    def test_fleet_throughput_improves(self, engine):
        results = {}
        for policy in ("loadpart", "neurosurgeon"):
            system = MultiClientSystem(engine, 24,
                                       config=SystemConfig(policy=policy, seed=2))
            results[policy] = system.run(25.0)
        assert results["loadpart"].total_requests > results["neurosurgeon"].total_requests

    def test_records_interleave_in_time(self, engine):
        system = MultiClientSystem(engine, 4, config=SystemConfig(seed=3))
        result = system.run(5.0)
        all_starts = sorted(r.start_s for t in result.timelines for r in t)
        per_client_last = [t.records[-1].start_s for t in result.timelines]
        # Every client kept issuing until near the horizon.
        assert min(per_client_last) > 0.5 * max(all_starts)


class TestMultiFunctional:
    def test_functional_fleet_matches_simulation_records(self, squeezenet_engine):
        sim = MultiClientSystem(squeezenet_engine, 2,
                                config=SystemConfig(seed=4)).run(0.2)
        system = MultiClientSystem(
            squeezenet_engine, 2,
            config=SystemConfig(seed=4, functional=True, backend="planned"),
        )
        fn = system.run(0.2)
        assert [t.records for t in sim.timelines] == [t.records for t in fn.timelines]
        assert all(c.last_output is not None for c in system.clients)


def _record(server_id=None, total=0.1, status="ok", start=0.0):
    from repro.runtime.messages import InferenceRecord

    return InferenceRecord(
        request_id=1, start_s=start, partition_point=3,
        estimated_bandwidth_bps=8e6, k_used=1.0, device_s=0.01,
        upload_s=0.0 if server_id is None else 0.02,
        server_s=0.0 if server_id is None else 0.05,
        download_s=0.0, overhead_s=0.0, total_s=total,
        load_level="idle", device_cache_hit=True, server_cache_hit=True,
        status=status, server_id=server_id,
    )


class TestServerBreakdown:
    def test_every_server_gets_a_row(self):
        from repro.runtime.multi import FleetResult
        from repro.runtime.system import Timeline

        result = FleetResult(
            timelines=(Timeline([_record(server_id=0), _record()]),),
            policy="loadpart", num_servers=3)
        stats = result.server_breakdown()
        assert [s.server_id for s in stats] == [0, 1, 2]
        assert stats[0].requests == 1
        assert stats[1].requests == 0

    def test_idle_server_is_nan_safe(self):
        import math

        from repro.runtime.multi import ServerStats

        s = ServerStats.from_records(2, [])
        assert s.requests == 0
        assert math.isnan(s.availability)
        assert math.isnan(s.mean_latency)
        assert math.isnan(s.p95_latency)

    def test_all_failed_server_is_nan_safe(self):
        import math

        from repro.runtime.multi import ServerStats

        s = ServerStats.from_records(0, [
            _record(server_id=0, total=float("inf"), status="failed")])
        assert s.requests == 1
        assert s.completed == 0
        assert s.availability == 0.0
        assert math.isnan(s.mean_latency)
        assert s.failed == 1

    def test_status_counters(self):
        from repro.runtime.multi import ServerStats

        s = ServerStats.from_records(0, [
            _record(server_id=0),
            _record(server_id=0, status="rejected"),
            _record(server_id=0, status="fallback_local"),
        ])
        assert s.rejected == 1
        assert s.fallbacks == 1

    def test_local_requests_counted_separately(self):
        from repro.runtime.multi import FleetResult
        from repro.runtime.system import Timeline

        result = FleetResult(
            timelines=(Timeline([_record(), _record(server_id=1)]),),
            policy="loadpart", num_servers=2)
        assert result.local_requests == 1


class TestTimelineForServer:
    def test_filters_by_server_id(self):
        from repro.runtime.system import Timeline

        t = Timeline([_record(server_id=0), _record(server_id=1), _record()])
        assert len(t.for_server(0)) == 1
        assert len(t.for_server(1)) == 1
        assert len(t.for_server(None)) == 1
        assert len(t.for_server(7)) == 0
