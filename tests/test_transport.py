"""Real-socket transport: loopback bit-exactness, streaming, error replies.

:mod:`repro.runtime.transport` is the asyncio face of the offload path.
These tests run a :class:`TransportServer` on an ephemeral loopback port
inside the test process (no subprocess, no pytest-asyncio — each test is
a sync function driving one ``asyncio.run``) and pin:

- monolithic fp32 and streamed-lossless requests reproduce local
  execution **bit-exactly**;
- lossy codecs stay within the codec's declared error bound;
- the server answers a bad request with an ``error`` reply and keeps
  serving the same connection;
- frame helpers round-trip headers and payloads.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.graph.partitioner import GraphPartitioner
from repro.models import build_model
from repro.network.codec import TensorCodec
from repro.nn import GraphExecutor, SegmentExecutor
from repro.runtime.transport import (
    OffloadOutcome,
    TransportClient,
    TransportServer,
    recv_frame,
    send_frame,
)

MODEL = "squeezenet"
SEED = 11
POINT = 47


@pytest.fixture(scope="module")
def local_reference():
    """(graph, reference output, boundary tensors at POINT)."""
    graph = build_model(MODEL)
    executor = GraphExecutor(graph, seed=SEED)
    rng = np.random.default_rng(2)
    x = rng.standard_normal(graph.input_spec.shape).astype(np.float32)
    reference = executor.run(x)
    part = GraphPartitioner(graph).partition(POINT)
    head = SegmentExecutor(part.head, params=executor.params)
    boundary = head.run({graph.input_name: x})
    return graph, reference, boundary


def _with_session(coro_fn):
    """Start a server on an ephemeral port, connect, run, tear down."""
    async def main():
        server = TransportServer(MODEL, seed=SEED)
        host, port = await server.start()
        client = await TransportClient.connect(host, port)
        try:
            return await coro_fn(client)
        finally:
            await client.shutdown_server()
            await client.close()
            await server.wait_closed()
    return asyncio.run(main())


class TestLoopback:
    def test_monolithic_fp32_bit_exact(self, local_reference):
        _graph, reference, boundary = local_reference

        async def drive(client):
            return await client.offload(POINT, boundary)

        out = _with_session(drive)
        assert isinstance(out, OffloadOutcome)
        assert out.chunks == 1 and out.codec == "fp32"
        assert out.result.tobytes() == np.ascontiguousarray(reference).tobytes()
        assert out.tail_s <= out.server_s

    def test_streamed_lossless_bit_exact(self, local_reference):
        _graph, reference, boundary = local_reference

        async def drive(client):
            return await client.offload(POINT, boundary, codec="zlib",
                                        chunk_bytes=8192)

        out = _with_session(drive)
        assert out.chunks > 1 and out.codec == "zlib"
        assert out.result.tobytes() == np.ascontiguousarray(reference).tobytes()

    def test_streamed_lossy_within_bound(self, local_reference):
        """int8 on the wire: the reply matches local execution of the
        round-tripped boundary, and the boundary error obeys the bound."""
        graph, _reference, boundary = local_reference

        async def drive(client):
            return await client.offload(POINT, boundary, codec="int8",
                                        chunk_bytes=8192)

        out = _with_session(drive)
        codec = TensorCodec("int8")
        for tensor in boundary.values():
            assert codec.max_abs_error(tensor) <= codec.error_bound(tensor)
        executor = GraphExecutor(graph, seed=SEED)
        part = GraphPartitioner(graph).partition(POINT)
        tail = SegmentExecutor(part.tail, params=executor.params)
        expected = tail.run({k: codec.round_trip(v)
                             for k, v in boundary.items()})[graph.output_name]
        assert out.result.tobytes() == np.ascontiguousarray(expected).tobytes()

    def test_wire_order_override_is_equivalent(self, local_reference):
        """Any permutation of the crossing tensors decodes to the same
        result — wire order only affects overlap, never the value."""
        _graph, reference, boundary = local_reference
        order = sorted(boundary, reverse=True)

        async def drive(client):
            return await client.offload(POINT, boundary, codec="zlib",
                                        chunk_bytes=4096, order=order)

        out = _with_session(drive)
        assert out.result.tobytes() == np.ascontiguousarray(reference).tobytes()

    def test_multiple_requests_one_connection(self, local_reference):
        _graph, reference, boundary = local_reference

        async def drive(client):
            outs = []
            for chunk_bytes in (None, 16384, 4096):
                outs.append(await client.offload(
                    POINT, boundary, codec="zlib" if chunk_bytes else "fp32",
                    chunk_bytes=chunk_bytes))
            return outs

        ref_bytes = np.ascontiguousarray(reference).tobytes()
        for out in _with_session(drive):
            assert out.result.tobytes() == ref_bytes


class TestErrorHandling:
    def test_error_reply_keeps_connection_serving(self, local_reference):
        _graph, reference, boundary = local_reference

        async def drive(client):
            with pytest.raises(RuntimeError, match="server error"):
                await client.offload(10 ** 6, boundary)  # invalid point
            return await client.offload(POINT, boundary)

        out = _with_session(drive)
        assert out.result.tobytes() == np.ascontiguousarray(reference).tobytes()

    def test_bad_order_rejected_client_side(self, local_reference):
        _graph, _reference, boundary = local_reference

        async def drive(client):
            with pytest.raises(ValueError, match="order must cover"):
                await client.offload(POINT, boundary, order=["nope"])
            return True

        assert _with_session(drive)


class TestFrames:
    def test_frame_round_trip(self):
        async def main():
            reader = asyncio.StreamReader()

            class _Writer:
                def __init__(self):
                    self.buf = bytearray()

                def write(self, data):
                    self.buf.extend(data)

                async def drain(self):
                    pass

            writer = _Writer()
            header = {"op": "chunk", "request_id": 3}
            payload = b"\x00\x01" * 100
            await send_frame(writer, header, payload)
            reader.feed_data(bytes(writer.buf))
            reader.feed_eof()
            got_header, got_payload = await recv_frame(reader)
            assert got_header == header
            assert got_payload == payload

        asyncio.run(main())


class TestMidConnectionResets:
    """Satellite: resets mid-request never hang either endpoint.

    A truncated frame or a dropped socket during a streamed upload must
    leave the server serving subsequent clients, and the client must
    surface a failed :class:`~repro.network.channel.TransferResult`
    through :class:`TransportFailure` instead of blocking forever.
    """

    def _server_survives(self, sabotage, local_reference):
        """Run ``sabotage`` against a live server, then serve a clean client."""
        graph, reference, boundary = local_reference

        async def main():
            server = TransportServer(MODEL, seed=SEED)
            host, port = await server.start()
            try:
                await sabotage(host, port)
                # The wounded connection is gone; a fresh client still works.
                client = await TransportClient.connect(host, port)
                try:
                    out = await client.offload(POINT, boundary)
                finally:
                    await client.shutdown_server()
                    await client.close()
                return out
            finally:
                await server.wait_closed()

        out = asyncio.run(main())
        assert out.result.tobytes() == np.ascontiguousarray(reference).tobytes()

    def test_truncated_frame_then_next_client_served(self, local_reference):
        import struct

        async def sabotage(host, port):
            _reader, writer = await asyncio.open_connection(host, port)
            # Declare a 100-byte header but deliver 5 bytes, then vanish.
            writer.write(struct.pack("!II", 100, 0) + b"trunc")
            await writer.drain()
            writer.close()

        self._server_survives(sabotage, local_reference)

    def test_dropped_socket_mid_stream_then_next_client_served(
            self, local_reference):
        _graph, _reference, boundary = local_reference

        from repro.runtime.transport import _tensor_meta

        async def sabotage(host, port):
            reader, writer = await asyncio.open_connection(host, port)
            name = next(iter(boundary))
            enc = TensorCodec("fp32").encode(boundary[name])
            await send_frame(writer, {
                "op": "begin", "request_id": 1, "point": POINT,
                "tensors": [_tensor_meta(name, enc)],
            })
            # One chunk of the stream, then the socket dies mid-upload.
            await send_frame(writer, {"op": "chunk", "request_id": 1},
                             enc.payload[: max(len(enc.payload) // 2, 1)])
            writer.close()

        self._server_survives(sabotage, local_reference)

    def test_client_raises_transport_failure_on_reset(self, local_reference):
        """A server that hangs up mid-request surfaces a failed result."""
        from repro.runtime.transport import TransportFailure

        _graph, _reference, boundary = local_reference

        async def main():
            async def slam(reader, writer):
                await reader.read(64)   # swallow a little, then hang up
                writer.close()

            server = await asyncio.start_server(slam, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            client = await TransportClient.connect(host, port)
            try:
                with pytest.raises(TransportFailure) as err:
                    await client.offload(POINT, boundary, timeout_s=5.0)
                return err.value
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        failure = asyncio.run(main())
        assert failure.result.delivered is False
        assert failure.result.nbytes > 0
        assert failure.result.elapsed_s < 5.0

    def test_client_times_out_on_silent_server(self, local_reference):
        """A reply that never comes raises at ``timeout_s``, never hangs."""
        from repro.runtime.transport import TransportFailure

        _graph, _reference, boundary = local_reference

        async def main():
            async def black_hole(reader, writer):
                while await reader.read(1 << 16):
                    pass            # consume everything, answer nothing

            server = await asyncio.start_server(black_hole, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            client = await TransportClient.connect(host, port)
            try:
                with pytest.raises(TransportFailure) as err:
                    await client.offload(POINT, boundary, timeout_s=0.2)
                return err.value
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        failure = asyncio.run(main())
        assert failure.result.delivered is False
        assert failure.result.timed_out is True
        assert failure.result.elapsed_s == pytest.approx(0.2)
