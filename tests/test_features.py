"""NodeProfile and the Table II feature vectors."""

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder
from repro.profiling.features import (
    CANDIDATE_FEATURES,
    FEATURE_NAMES,
    candidate_vector,
    feature_vector,
    profile_graph,
    profile_node,
)


def make_profile(op, input_shape, **attrs):
    b = GraphBuilder("t", input_shape)
    if op == "add":
        name = b.add(b.input, b.input)
    else:
        name = b.node(op, [b.input], **attrs)
    node = b.graph.node(name)
    return profile_node(node, b.graph.input_specs_of(node))


class TestNodeProfile:
    def test_conv_geometry(self):
        p = make_profile("conv2d", (1, 3, 224, 224), out_channels=64, kernel=11,
                         stride=4, padding=2)
        assert (p.c_in, p.c_out) == (3, 64)
        assert (p.h_out, p.w_out) == (55, 55)
        assert (p.k_h, p.k_w) == (11, 11)
        assert p.s_f == 3 * 11 * 11
        assert p.flops == 1 * 3 * 55 * 55 * 121 * 64
        assert p.category == "conv"

    def test_padded_size(self):
        p = make_profile("dwconv2d", (1, 8, 10, 10), kernel=3, padding=1)
        assert p.padded_size == 8 * 12 * 12

    def test_matmul_geometry(self):
        p = make_profile("matmul", (1, 128), out_features=64)
        assert (p.c_in, p.c_out) == (128, 64)
        assert (p.h_in, p.w_in) == (1, 1)
        assert p.param_bytes == 128 * 64 * 4

    def test_global_pool_kernel_is_input_map(self):
        p = make_profile("global_avgpool", (1, 16, 7, 7))
        assert (p.k_h, p.k_w) == (7, 7)

    def test_add_input_bytes_counts_both(self):
        p = make_profile("add", (1, 4, 4, 4))
        assert p.input_bytes == 2 * 4 * 16 * 4

    def test_bytes(self):
        p = make_profile("relu", (1, 4, 4, 4))
        assert p.input_bytes == p.output_bytes == 4 * 16 * 4
        assert p.input_elems == 64


class TestFeatureVectors:
    def test_conv_edge_features(self):
        p = make_profile("conv2d", (1, 16, 28, 28), out_channels=32, kernel=3, padding=1)
        v = feature_vector(p, "edge")
        s_f = 16 * 9
        expected = [p.flops, s_f, 28 * s_f, 32 * s_f]
        np.testing.assert_array_equal(v, expected)

    def test_conv_device_features(self):
        p = make_profile("conv2d", (1, 16, 28, 28), out_channels=32, kernel=3, padding=1)
        v = feature_vector(p, "device")
        np.testing.assert_array_equal(v, [p.flops, 1 * 32 * 16 * 9])

    def test_dwconv_edge_includes_padded_size(self):
        p = make_profile("dwconv2d", (1, 8, 10, 10), kernel=3, padding=1)
        v = feature_vector(p, "edge")
        assert v[2] == p.padded_size

    def test_matmul_features_both_sides_equal(self):
        p = make_profile("matmul", (1, 128), out_features=64)
        np.testing.assert_array_equal(feature_vector(p, "edge"), feature_vector(p, "device"))
        np.testing.assert_array_equal(
            feature_vector(p, "edge"), [128 * 64, 128, 64, 128 * 64]
        )

    def test_pooling_features(self):
        p = make_profile("maxpool2d", (1, 8, 8, 8), kernel=2)
        v = feature_vector(p, "edge")
        np.testing.assert_array_equal(v, [8 * 4 * 4 * 4, 8 * 64, 8 * 16, 16])

    def test_scalar_categories_get_flops_only(self):
        for op in ("bias_add", "relu", "batchnorm"):
            p = make_profile(op, (1, 4, 4, 4))
            assert feature_vector(p, "edge").tolist() == [64.0]
            assert feature_vector(p, "device").tolist() == [64.0]

    def test_rejects_bad_side(self):
        p = make_profile("relu", (1, 4))
        with pytest.raises(ValueError, match="side"):
            feature_vector(p, "cloud")

    def test_rejects_uncategorised_op(self):
        p = make_profile("flatten", (1, 4, 4, 4))
        with pytest.raises(ValueError, match="category"):
            feature_vector(p, "edge")

    def test_feature_names_cover_all_categories_and_sides(self):
        from repro.graph.ops import CATEGORIES

        for category in CATEGORIES:
            for side in ("edge", "device"):
                assert (category, side) in FEATURE_NAMES

    def test_candidate_vector_shape(self):
        p = make_profile("conv2d", (1, 16, 28, 28), out_channels=32, kernel=3, padding=1)
        assert candidate_vector(p).shape == (len(CANDIDATE_FEATURES),)

    def test_table2_selection_subset_of_candidates(self):
        for names in FEATURE_NAMES.values():
            assert set(names) <= set(CANDIDATE_FEATURES)


class TestProfileGraph:
    def test_order_and_length(self, chain_graph):
        profiles = profile_graph(chain_graph)
        assert len(profiles) == len(chain_graph)
        assert [p.op for p in profiles] == [
            chain_graph.node(n).op for n in chain_graph.topological_order()
        ]
