"""Executors: the partitioned-equals-monolithic invariant, determinism."""

import numpy as np
import pytest

from repro.graph.partitioner import GraphPartitioner
from repro.models import build_model
from repro.nn.executor import GraphExecutor, SegmentExecutor, init_parameters


def run_partitioned(graph, executor, part, x):
    """Drive head then tail exactly as the runtime would."""
    boundary = {}
    if not part.head.is_empty or part.partition_point > 0:
        head = SegmentExecutor(part.head, params=executor.params)
        boundary = dict(head.run({graph.input_name: x})) if part.partition_point > 0 else {}
    if graph.input_name in part.transfer_specs:
        boundary[graph.input_name] = x
    if part.tail.is_empty:
        return boundary[graph.output_name]
    tail = SegmentExecutor(part.tail, params=executor.params)
    return tail.run(boundary)[graph.output_name]


class TestGraphExecutor:
    def test_output_shape(self, chain_graph, rng):
        ex = GraphExecutor(chain_graph)
        x = rng.standard_normal(chain_graph.input_spec.shape).astype(np.float32)
        assert ex.run(x).shape == chain_graph.output_spec.shape

    def test_rejects_wrong_input_shape(self, chain_graph, rng):
        ex = GraphExecutor(chain_graph)
        with pytest.raises(ValueError, match="input shape"):
            ex.run(np.zeros((1, 3, 8, 8), dtype=np.float32))

    def test_deterministic_given_seed(self, chain_graph, rng):
        x = rng.standard_normal(chain_graph.input_spec.shape).astype(np.float32)
        a = GraphExecutor(chain_graph, seed=5).run(x)
        b = GraphExecutor(chain_graph, seed=5).run(x)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, chain_graph, rng):
        x = rng.standard_normal(chain_graph.input_spec.shape).astype(np.float32)
        a = GraphExecutor(chain_graph, seed=5).run(x)
        b = GraphExecutor(chain_graph, seed=6).run(x)
        assert np.abs(a - b).max() > 0

    def test_keep_intermediates(self, chain_graph, rng):
        ex = GraphExecutor(chain_graph)
        x = rng.standard_normal(chain_graph.input_spec.shape).astype(np.float32)
        ex.run(x, keep=["relu"])
        assert "relu" in ex.last_intermediates
        assert np.all(ex.last_intermediates["relu"] >= 0)

    def test_dag_execution(self, diamond_graph, rng):
        ex = GraphExecutor(diamond_graph)
        x = rng.standard_normal(diamond_graph.input_spec.shape).astype(np.float32)
        out = ex.run(x)
        assert out.shape == diamond_graph.output_spec.shape
        assert np.all(out >= 0)  # final relu


class TestInitParameters:
    def test_same_name_same_seed_identical(self, chain_graph):
        nodes = [chain_graph.node(n) for n in chain_graph.topological_order()]
        a = init_parameters(nodes, seed=1)
        b = init_parameters(nodes, seed=1)
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])

    def test_gamma_is_ones(self, diamond_graph):
        from repro.graph.builder import GraphBuilder

        b = GraphBuilder("g", (1, 4, 4, 4))
        x = b.batchnorm(b.input, name="bn")
        b.output(x)
        g = b.build()
        params = init_parameters([g.node("bn")], seed=0)
        np.testing.assert_array_equal(params["bn.gamma"], np.ones(4, dtype=np.float32))

    def test_bias_is_zeros(self, chain_graph):
        params = init_parameters([chain_graph.node("bias")], seed=0)
        np.testing.assert_array_equal(params["bias.bias"], np.zeros(8, dtype=np.float32))


class TestSegmentExecutor:
    def test_missing_boundary_rejected(self, chain_graph):
        part = GraphPartitioner(chain_graph).partition(3)
        tail = SegmentExecutor(part.tail)
        with pytest.raises(ValueError, match="missing boundary"):
            tail.run({})

    def test_wrong_boundary_shape_rejected(self, chain_graph):
        part = GraphPartitioner(chain_graph).partition(3)
        tail = SegmentExecutor(part.tail)
        bad = {name: np.zeros((1, 1, 1, 1), dtype=np.float32) for name in part.transfer_specs}
        with pytest.raises(ValueError, match="shape"):
            tail.run(bad)


class TestPartitionEquivalence:
    """The core functional invariant: splitting never changes the output."""

    @pytest.mark.parametrize("p", [0, 1, 3, 5, 6])
    def test_chain_all_points(self, chain_graph, rng, p):
        x = rng.standard_normal(chain_graph.input_spec.shape).astype(np.float32)
        ex = GraphExecutor(chain_graph, seed=3)
        ref = ex.run(x)
        part = GraphPartitioner(chain_graph).partition(p)
        got = run_partitioned(chain_graph, ex, part, x)
        np.testing.assert_allclose(got, ref, rtol=1e-5, atol=1e-6)

    def test_diamond_every_point(self, diamond_graph, rng):
        x = rng.standard_normal(diamond_graph.input_spec.shape).astype(np.float32)
        ex = GraphExecutor(diamond_graph, seed=3)
        ref = ex.run(x)
        partitioner = GraphPartitioner(diamond_graph)
        for p in range(len(diamond_graph) + 1):
            part = partitioner.partition(p)
            got = run_partitioned(diamond_graph, ex, part, x)
            np.testing.assert_allclose(got, ref, rtol=1e-5, atol=1e-6)

    def test_fire_every_point(self, fire_graph, rng):
        x = rng.standard_normal(fire_graph.input_spec.shape).astype(np.float32)
        ex = GraphExecutor(fire_graph, seed=3)
        ref = ex.run(x)
        partitioner = GraphPartitioner(fire_graph)
        for p in range(len(fire_graph) + 1):
            got = run_partitioned(fire_graph, ex, partitioner.partition(p), x)
            np.testing.assert_allclose(got, ref, rtol=1e-5, atol=1e-6)

    @pytest.mark.parametrize("model,points", [
        ("alexnet", (0, 4, 8, 19, 27)),
        ("squeezenet", (0, 5, 26, 47, 92)),
        ("resnet18", (0, 9, 35, 70)),
    ])
    def test_zoo_models_at_landmark_points(self, model, points, rng):
        graph = build_model(model)
        x = rng.standard_normal(graph.input_spec.shape).astype(np.float32)
        ex = GraphExecutor(graph, seed=9)
        ref = ex.run(x)
        partitioner = GraphPartitioner(graph)
        for p in points:
            part = partitioner.partition(p)
            got = run_partitioned(graph, ex, part, x)
            np.testing.assert_allclose(got, ref, rtol=2e-4, atol=1e-5)
