"""Gradient-boosted trees: regression quality and feature importance."""

import numpy as np
import pytest

from repro.profiling.gbt import GradientBoostedTrees, rank_features


class TestRegression:
    def test_fits_linear_function(self, rng):
        X = rng.random((400, 2))
        y = 3 * X[:, 0] + 1.0
        model = GradientBoostedTrees(n_estimators=60).fit(X, y)
        pred = model.predict(X)
        assert np.sqrt(((pred - y) ** 2).mean()) < 0.15

    def test_fits_step_function(self, rng):
        X = rng.random((400, 1))
        y = (X[:, 0] > 0.5).astype(float)
        model = GradientBoostedTrees(n_estimators=40).fit(X, y)
        pred = model.predict(X)
        assert ((pred > 0.5) == (y > 0.5)).mean() > 0.97

    def test_improves_over_mean_baseline(self, rng):
        X = rng.random((300, 3))
        y = np.sin(X[:, 0] * 6) + X[:, 1] ** 2
        model = GradientBoostedTrees().fit(X, y)
        model_sse = ((model.predict(X) - y) ** 2).sum()
        mean_sse = ((y - y.mean()) ** 2).sum()
        assert model_sse < 0.2 * mean_sse

    def test_input_validation(self, rng):
        with pytest.raises(ValueError):
            GradientBoostedTrees().fit(rng.random(10), rng.random(10))
        with pytest.raises(ValueError):
            GradientBoostedTrees().fit(rng.random((10, 2)), rng.random(9))


class TestImportance:
    def test_relevant_feature_dominates(self, rng):
        X = rng.random((500, 4))
        y = 10 * X[:, 2] + 0.01 * rng.standard_normal(500)
        model = GradientBoostedTrees(n_estimators=30).fit(X, y)
        importance = model.feature_importance()
        assert importance.argmax() == 2
        assert importance[2] > 0.9

    def test_importance_sums_to_one(self, rng):
        X = rng.random((200, 3))
        y = X[:, 0] + X[:, 1]
        model = GradientBoostedTrees().fit(X, y)
        assert model.feature_importance().sum() == pytest.approx(1.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostedTrees().feature_importance()

    def test_rank_features_sorted(self, rng):
        X = rng.random((300, 3))
        y = 5 * X[:, 1] + X[:, 0]
        ranking = rank_features(X, y, ["a", "b", "c"])
        scores = list(ranking.values())
        assert scores == sorted(scores, reverse=True)
        assert list(ranking)[0] == "b"
