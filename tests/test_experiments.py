"""Experiment regenerators: structure and headline claims (small scale)."""

import pytest

from repro.experiments import fig1, fig2, fig6, fig7, fig8, fig9, table1, table2, table3, table4


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return fig1.run_fig1()

    def test_best_point_is_partial(self, result):
        n = len(result.rows) - 1
        assert 0 < result.best.point < n

    def test_beats_full_offloading_by_large_factor(self, result):
        """Paper: up to ~4x vs full offloading at 8 Mbps."""
        assert result.speedup_vs_full > 2.0

    def test_beats_local_inference(self, result):
        """Paper: ~30% better than local inference."""
        assert result.speedup_vs_local > 1.15

    def test_rows_cover_all_points(self, result):
        assert [r.point for r in result.rows] == list(range(28))

    def test_device_time_monotone_in_p(self, result):
        times = [r.device_s for r in result.rows]
        assert times == sorted(times)

    def test_server_time_decreasing_in_p(self, result):
        times = [r.server_s for r in result.rows]
        assert times == sorted(times, reverse=True)

    def test_format_runs(self, result):
        text = fig1.format_fig1(result)
        assert "maxpool" in text and "vs full offloading" in text


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2.run_fig2(samples=120, seed=1)

    def test_flat_below_50(self, result):
        for stats in result.stats.values():
            by_name = {s.level: s for s in stats}
            assert by_name["50%"].mean_s < 1.02 * by_name["0%"].mean_s

    def test_rising_at_high_load(self, result):
        for stats in result.stats.values():
            by_name = {s.level: s for s in stats}
            assert by_name["100%(l)"].mean_s > by_name["90%"].mean_s

    def test_100h_much_worse_than_100l(self, result):
        for model, stats in result.stats.items():
            by_name = {s.level: s for s in stats}
            assert by_name["100%(h)"].mean_s > 1.15 * by_name["100%(l)"].mean_s, model

    def test_fluctuation_grows(self, result):
        for stats in result.stats.values():
            by_name = {s.level: s for s in stats}
            assert by_name["100%(h)"].std_s > 5 * by_name["30%"].std_s

    def test_format_runs(self, result):
        assert "100%(h)" in fig2.format_fig2(result)


class TestTable1:
    def test_all_models_within_reference(self):
        result = table1.run_table1()
        assert result.all_within_reference
        assert "Conv" in table1.format_table1(result)


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2.run_table2(samples=150, seed=2)

    def test_covers_selected_categories(self, result):
        pairs = {(r.category, r.side) for r in result.rows}
        assert ("conv", "edge") in pairs and ("matmul", "device") in pairs

    def test_flops_dominates_for_matmul(self, result):
        for row in result.rows:
            if row.category == "matmul":
                assert row.ranking[0][0] == "flops"

    def test_format_runs(self, result):
        assert "Table II" in table2.format_table2(result)


class TestTable3:
    def test_structure_and_claims(self, trained_report):
        result = table3.Table3Result(report=trained_report)
        assert result.matmul_is_most_accurate_device
        assert result.device_conv_is_worst_mape
        text = table3.format_table3(result)
        assert "paper dev MAPE" in text


class TestTable4:
    def test_specs(self):
        result = table4.run_table4()
        assert result.device.system == "Raspberry Pi 4 Model B"
        assert "Tesla T4" in result.edge.gpu
        text = table4.format_table4(result)
        assert "Raspberry Pi" in text and "GFLOP/s" in text


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6.run_fig6(models=("alexnet",), segment_s=12.0, seed=1)

    def test_alexnet_trajectory(self, result):
        stats = result.per_model["alexnet"]
        n = result.num_nodes["alexnet"]
        by_bw = {}
        for s in stats:
            by_bw.setdefault(s.bandwidth_mbps, []).append(s)
        # Local at 1 Mbps, offloading at 64 Mbps.
        assert all(s.dominant_point == n for s in by_bw[1])
        assert all(s.dominant_point < n for s in by_bw[64])

    def test_latency_improves_with_bandwidth(self, result):
        stats = result.per_model["alexnet"]
        assert stats[-1].median_latency_s < stats[3].median_latency_s

    def test_format_runs(self, result):
        assert "alexnet" in fig6.format_fig6(result)


class TestFig7And8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7.run_policy_comparison("alexnet", bandwidths_mbps=(1, 8, 64),
                                          requests=15, seed=1)

    def test_loadpart_never_loses(self, result):
        for row in result.rows:
            assert row.loadpart_s <= 1.10 * min(row.local_s, row.full_s)

    def test_speedups_positive(self, result):
        assert result.mean_speedup_vs_full >= 1.0
        assert result.mean_speedup_vs_local >= 0.95

    def test_large_speedup_vs_full_at_low_bandwidth(self, result):
        row = result.rows[0]
        assert row.bandwidth_mbps == 1
        assert row.full_s / row.loadpart_s > 5.0

    def test_format_runs(self, result):
        assert "speedup" in fig7.format_fig7(result)
        fig8_result = fig8.run_fig8(bandwidths_mbps=(8,), requests=10, seed=1)
        assert "speedup" in fig8.format_fig8(fig8_result)


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig9.run_fig9(models=("squeezenet",), duration_s=260.0, seed=1)

    def test_loadpart_reduces_mean_latency(self, result):
        r = result.per_model["squeezenet"]
        assert r.mean_reduction > 0.03

    def test_max_window_reduction_substantial(self, result):
        """Paper: up to 32.3% for SqueezeNet."""
        r = result.per_model["squeezenet"]
        assert r.max_window_reduction > 0.15

    def test_loadpart_uses_more_points_than_baseline(self, result):
        r = result.per_model["squeezenet"]
        assert len(r.loadpart_points) > len(r.baseline_points)

    def test_series_available(self, result):
        series = fig9.timeline_series(result.per_model["squeezenet"])
        assert len(series) > 20

    def test_format_runs(self, result):
        assert "squeezenet" in fig9.format_fig9(result)
