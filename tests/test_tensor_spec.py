"""TensorSpec: validation, sizes."""

import pytest

from repro.graph.node import CNode, Parameter, TensorSpec


class TestTensorSpec:
    def test_numel(self):
        assert TensorSpec((1, 3, 224, 224)).numel == 150528

    def test_nbytes_float32(self):
        assert TensorSpec((1, 3, 224, 224)).nbytes == 602112

    def test_nbytes_matches_paper_inception_input(self):
        # The paper: 1x3x299x299 input is 1.02 MB.
        spec = TensorSpec((1, 3, 299, 299))
        assert abs(spec.nbytes / 1e6 - 1.07) < 0.01  # 1.02 MiB == 1.07 MB

    def test_nbytes_float16(self):
        assert TensorSpec((2, 4), "float16").nbytes == 16

    def test_rank(self):
        assert TensorSpec((1, 2, 3)).rank == 3

    def test_rejects_empty_shape(self):
        with pytest.raises(ValueError):
            TensorSpec(())

    def test_rejects_zero_dim(self):
        with pytest.raises(ValueError):
            TensorSpec((1, 0, 3))

    def test_rejects_negative_dim(self):
        with pytest.raises(ValueError):
            TensorSpec((1, -2))

    def test_rejects_non_int_dim(self):
        with pytest.raises(ValueError):
            TensorSpec((1, 2.5))  # type: ignore[arg-type]

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ValueError):
            TensorSpec((1,), "float64")

    def test_is_hashable_and_frozen(self):
        a = TensorSpec((1, 2))
        b = TensorSpec((1, 2))
        assert a == b and hash(a) == hash(b)
        with pytest.raises(Exception):
            a.shape = (3,)  # type: ignore[misc]


class TestParameter:
    def test_nbytes(self):
        p = Parameter("w", TensorSpec((8, 4, 3, 3)))
        assert p.nbytes == 8 * 4 * 9 * 4

    def test_default_role(self):
        assert Parameter("w", TensorSpec((1,))).role == "weight"


class TestCNode:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            CNode(name="", op="relu", inputs=["x"])

    def test_rejects_duplicate_inputs_for_unary(self):
        with pytest.raises(ValueError):
            CNode(name="c", op="concat", inputs=["x", "x"])

    def test_allows_duplicate_inputs_for_add(self):
        node = CNode(name="a", op="add", inputs=["x", "x"])
        assert node.inputs == ["x", "x"]

    def test_param_bytes(self):
        node = CNode(
            name="c",
            op="conv2d",
            inputs=["x"],
            params=[Parameter("c.w", TensorSpec((2, 2)))],
        )
        assert node.param_bytes == 16
