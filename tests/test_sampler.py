"""Config sampler: validity, realism bounds, determinism."""

import pytest

from repro.graph.ops import CATEGORIES
from repro.profiling.sampler import (
    _MAX_ACTIVATION_ELEMS,
    _MAX_CONV_FLOPS,
    CATEGORY_OPS,
    ConfigSampler,
)


class TestSampling:
    @pytest.mark.parametrize("category", CATEGORIES)
    def test_category_produces_requested_count(self, category):
        profiles = ConfigSampler(seed=0).sample_profiles(category, 20)
        assert len(profiles) == 20
        assert all(p.category == category for p in profiles)

    def test_unknown_category(self):
        with pytest.raises(KeyError):
            ConfigSampler().sample_profiles("attention", 5)

    def test_ops_cycle_within_category(self):
        profiles = ConfigSampler(seed=1).sample_profiles("pooling", 10)
        ops = {p.op for p in profiles}
        assert ops == set(CATEGORY_OPS["pooling"])

    def test_deterministic_given_seed(self):
        a = ConfigSampler(seed=42).sample_profiles("conv", 15)
        b = ConfigSampler(seed=42).sample_profiles("conv", 15)
        assert a == b

    def test_different_seeds_differ(self):
        a = ConfigSampler(seed=1).sample_profiles("conv", 15)
        b = ConfigSampler(seed=2).sample_profiles("conv", 15)
        assert a != b


class TestRealismBounds:
    def test_conv_respects_flop_cap(self):
        for p in ConfigSampler(seed=3).sample_profiles("conv", 200):
            assert p.flops <= _MAX_CONV_FLOPS

    def test_activation_sizes_bounded(self):
        for category in ("conv", "dwconv", "pooling", "elementwise"):
            for p in ConfigSampler(seed=4).sample_profiles(category, 100):
                assert p.c_in * p.h_in * p.w_in <= _MAX_ACTIVATION_ELEMS

    def test_all_profiles_have_positive_flops(self):
        for category in CATEGORIES:
            for p in ConfigSampler(seed=5).sample_profiles(category, 30):
                assert p.flops > 0

    def test_conv_output_dims_valid(self):
        for p in ConfigSampler(seed=6).sample_profiles("conv", 100):
            assert p.h_out >= 1 and p.w_out >= 1


class TestTimedSampling:
    def test_geometry_independent_of_backend(self):
        a = ConfigSampler(seed=9).sample_timed("conv", 2, backend="naive", repeats=1)
        b = ConfigSampler(seed=9).sample_timed("conv", 2, backend="planned", repeats=1)
        assert [t.profile for t in a] == [t.profile for t in b]
        assert all(t.wall_s > 0 for t in a + b)

    def test_fused_category_measurable(self):
        samples = ConfigSampler(seed=2).sample_timed("matmul_fused", 1,
                                                     backend="planned", repeats=1)
        assert samples[0].profile.op == "fused_matmul"
        assert samples[0].wall_s > 0
