"""Partition cache (§III-A)."""

import pytest

from repro.core.cache import PartitionCache
from repro.graph.partitioner import GraphPartitioner


@pytest.fixture
def cache(chain_graph):
    return PartitionCache(GraphPartitioner(chain_graph), capacity=3)


class TestCache:
    def test_miss_then_hit(self, cache):
        cache.get(2)
        assert (cache.hits, cache.misses) == (0, 1)
        cache.get(2)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_returns_correct_partition(self, cache):
        part = cache.get(3)
        assert part.partition_point == 3

    def test_contains(self, cache):
        assert 2 not in cache
        cache.get(2)
        assert 2 in cache

    def test_lru_eviction(self, cache):
        for p in (0, 1, 2):
            cache.get(p)
        cache.get(0)      # refresh 0
        cache.get(3)      # evicts 1 (least recently used)
        assert 0 in cache and 3 in cache and 1 not in cache

    def test_hit_rate(self, cache):
        assert cache.hit_rate == 0.0
        cache.get(1)
        cache.get(1)
        cache.get(1)
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_amortisation_paper_claim(self, cache):
        """Over ~100 requests at one point, nearly all are hits."""
        for _ in range(100):
            cache.get(4)
        assert cache.hit_rate >= 0.99

    def test_clear(self, cache):
        cache.get(1)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_capacity_validation(self, chain_graph):
        with pytest.raises(ValueError):
            PartitionCache(GraphPartitioner(chain_graph), capacity=0)

    def test_len_tracks_entries(self, cache):
        cache.get(0)
        cache.get(1)
        assert len(cache) == 2
