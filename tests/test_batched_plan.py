"""Batch-native plans and dynamic batching: bit-identity and fleet order.

The batched contract is per-sample: a stacked ``n``-sample planned run must
equal ``n`` independent naive batch-1 runs bit for bit.  That only holds
because the planned backend issues the *identical* BLAS calls a batch-1
plan does (per-sample GEMM slabs over one shared im2col, per-row GEMVs) —
a single fused GEMM over the whole batch changes OpenBLAS's summation
order and breaks it.
"""

import numpy as np
import pytest

from repro.graph import fuse_graph
from repro.graph.partitioner import GraphPartitioner
from repro.models import build_model
from repro.nn import GraphExecutor, SegmentExecutor
from repro.nn.plan import GraphPlan, PlanError
from repro.runtime.batching import BatchingConfig, DynamicBatcher, PendingRequest
from repro.runtime.multi import FleetResult, MultiClientSystem
from repro.runtime.system import OffloadingSystem, SystemConfig, Timeline
from tests.helpers import ZOO, assert_per_sample_bit_identical, sample_inputs

BATCH = 3


class TestBatchedZooBitIdentity:
    """Stacked planned run == n independent naive runs, per sample."""

    @pytest.mark.parametrize("model_name", ZOO)
    def test_per_sample_bit_identical(self, model_name):
        graph = build_model(model_name)
        planned = GraphExecutor(graph, seed=0, backend="planned", batch=BATCH)
        assert_per_sample_bit_identical(graph, planned, BATCH)

    @pytest.mark.parametrize("model_name", [pytest.param("squeezenet", id="squeezenet")])
    def test_fused_batched_bit_identical(self, model_name):
        graph = fuse_graph(build_model(model_name))
        planned = GraphExecutor(graph, seed=0, backend="planned", batch=BATCH)
        assert_per_sample_bit_identical(graph, planned, BATCH)


class TestBatchedSegments:
    def test_batched_tail_segment_matches_naive(self):
        graph = build_model("squeezenet")
        point = len(graph.topological_order()) // 2
        tail = GraphPartitioner(graph).partition(point).tail
        planned = SegmentExecutor(tail, seed=0, backend="planned", batch=BATCH)
        naive = SegmentExecutor(tail, seed=0, params=planned.params)
        rng = np.random.default_rng(5)
        per_sample = []
        stacked = {}
        for name, spec in tail.boundary_inputs.items():
            draws = [rng.standard_normal(spec.shape).astype(np.float32)
                     for _ in range(BATCH)]
            per_sample.append((name, draws))
            stacked[name] = np.concatenate(draws, axis=0)
        out = planned.run(stacked)
        for i in range(BATCH):
            ref = naive.run({name: draws[i] for name, draws in per_sample})
            for name, value in ref.items():
                assert np.array_equal(out[name][i:i + 1], value)

    def test_batch_shape_validation(self):
        graph = build_model("alexnet")
        plan = GraphPlan(graph, batch=2)
        with pytest.raises(ValueError):
            plan.run(sample_inputs(graph, 1)[0])  # batch-1 input into a batch-2 plan
        with pytest.raises(PlanError):
            GraphPlan(graph, batch=0)


class TestBatchingConfig:
    def test_padding_ladder(self):
        cfg = BatchingConfig()
        assert [cfg.padded_size(n) for n in (1, 2, 3, 4, 5, 8)] == [1, 2, 4, 4, 8, 8]
        with pytest.raises(ValueError):
            cfg.padded_size(9)

    def test_batch_time_scale(self):
        cfg = BatchingConfig(marginal_sample_cost=0.25)
        assert cfg.batch_time_scale(1) == 1.0
        assert cfg.batch_time_scale(4) == pytest.approx(1.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchingConfig(window_s=-1.0)
        with pytest.raises(ValueError):
            BatchingConfig(max_batch=16)  # above the ladder
        with pytest.raises(ValueError):
            BatchingConfig(ladder=())
        with pytest.raises(ValueError):
            BatchingConfig(marginal_sample_cost=-0.1)

    def test_single_client_system_rejects_batching(self, alexnet_engine):
        with pytest.raises(ValueError):
            OffloadingSystem(alexnet_engine,
                             config=SystemConfig(batching=BatchingConfig()))


class TestDynamicBatcher:
    def test_flush_on_max_batch(self):
        batcher = DynamicBatcher(BatchingConfig(max_batch=2))
        full, _ = batcher.enqueue(3, PendingRequest(1, 0.0))
        assert not full
        full, _ = batcher.enqueue(3, PendingRequest(2, 0.1))
        assert full
        assert [r.request_id for r in batcher.take(3)] == [1, 2]

    def test_stale_epoch_takes_nothing(self):
        batcher = DynamicBatcher(BatchingConfig())
        _, epoch = batcher.enqueue(3, PendingRequest(1, 0.0))
        batcher.take(3)            # flushed early (window timer now stale)
        batcher.enqueue(3, PendingRequest(2, 0.2))
        assert batcher.take(3, epoch) == []
        assert [r.request_id for r in batcher.take(3)] == [2]

    def test_queues_are_per_point(self):
        batcher = DynamicBatcher(BatchingConfig())
        batcher.enqueue(3, PendingRequest(1, 0.0))
        batcher.enqueue(7, PendingRequest(2, 0.0))
        assert batcher.queue_depth(3) == 1
        assert batcher.queue_depth(7) == 1
        drained = batcher.drain_all()
        assert [(point, [r.request_id for r in batch]) for point, batch in drained] \
            == [(3, [1]), (7, [2])]


class TestBatchedFleet:
    @pytest.fixture(scope="class")
    def batching_config(self):
        return SystemConfig(
            seed=4, policy="full",
            batching=BatchingConfig(window_s=0.01),
        )

    def test_never_reorders_or_drops_request_ids(self, squeezenet_engine,
                                                 batching_config):
        system = MultiClientSystem(squeezenet_engine, 4, config=batching_config)
        result = system.run(1.0)
        assert result.total_requests > 0
        for timeline in result.timelines:
            ids = [r.request_id for r in timeline]
            # Per-client IDs are issued 1, 2, 3, ... — dropped or reordered
            # requests would leave a gap or an inversion.
            assert ids == list(range(1, len(ids) + 1))

    def test_batches_form_and_queueing_is_recorded(self, squeezenet_engine,
                                                   batching_config):
        system = MultiClientSystem(squeezenet_engine, 4, config=batching_config)
        result = system.run(1.0)
        records = [r for t in result.timelines for r in t]
        assert max(r.batch_size for r in records) > 1
        batched = [r for r in records if r.batch_size > 1]
        # Someone waited for the batch to fill, and that wait is part of
        # the server time the client observed.
        assert any(r.server_queue_s > 0 for r in batched)
        for r in batched:
            assert r.server_s >= r.server_queue_s

    def test_functional_batched_outputs_match_naive(self, squeezenet_engine):
        config = SystemConfig(
            seed=4, policy="full", functional=True, backend="planned",
            batching=BatchingConfig(window_s=0.01),
        )
        system = MultiClientSystem(squeezenet_engine, 3, config=config)
        result = system.run(0.5)
        graph = squeezenet_engine.graph
        naive = GraphExecutor(graph, seed=config.seed)
        for i, (client, timeline) in enumerate(zip(system.clients,
                                                   result.timelines)):
            assert client.last_output is not None
            # Replay the client's private data stream to recover its last
            # input (one draw per request), then check the batched planned
            # tail produced the bit-identical full-graph result.
            rng = np.random.default_rng(config.seed + 200 + i + 0x5EED)
            x = None
            for _ in range(len(timeline)):
                x = rng.standard_normal(graph.input_spec.shape).astype(np.float32)
            assert x is not None
            assert np.array_equal(client.last_output, naive.run(x))


class TestFleetResultEmpty:
    def test_empty_fleet_metrics_are_nan_not_raise(self):
        empty = FleetResult(timelines=(), policy="loadpart")
        assert np.isnan(empty.mean_latency)
        assert np.isnan(empty.p95_latency)
        assert empty.total_requests == 0
        assert empty.local_fraction == 0.0

    def test_empty_timelines_are_nan_too(self):
        empty = FleetResult(timelines=(Timeline([]), Timeline([])), policy="full")
        assert np.isnan(empty.mean_latency)
        assert np.isnan(empty.p95_latency)
