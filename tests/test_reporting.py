"""Rendering helpers used by the experiment regenerators."""

import pytest

from repro.experiments.reporting import ms, pct, render_table


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(["a", "bbb"], [(1, "x"), ("yy", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}
        assert "yy" in lines[3]

    def test_column_widths_fit_longest_cell(self):
        text = render_table(["h"], [("longvalue",)])
        header, rule, row = text.splitlines()
        assert len(rule) == len("longvalue")

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [(1,)])

    def test_empty_rows_ok(self):
        text = render_table(["a"], [])
        assert text.splitlines()[0] == "a"


class TestFormatters:
    def test_ms(self):
        assert ms(0.1234) == "123.4"

    def test_pct(self):
        assert pct(0.1234) == "12.3%"
