"""Baseline strategies and the DADS-style min-cut."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import (
    FullOffloadStrategy,
    LocalStrategy,
    NeurosurgeonStrategy,
    dads_min_cut,
)
from repro.graph.builder import GraphBuilder


class TestNeurosurgeon:
    def test_ignores_k(self, squeezenet_engine):
        strategy = NeurosurgeonStrategy(squeezenet_engine)
        assert strategy.decide(8e6, k=1.0).point == strategy.decide(8e6, k=500.0).point

    def test_tracks_bandwidth(self, squeezenet_engine):
        strategy = NeurosurgeonStrategy(squeezenet_engine)
        assert strategy.decide(1e6).point != strategy.decide(64e6).point

    def test_matches_loadpart_at_k1(self, alexnet_engine):
        strategy = NeurosurgeonStrategy(alexnet_engine)
        for bw in (1e6, 8e6, 64e6):
            assert strategy.decide(bw).point == alexnet_engine.decide(bw, k=1.0).point


class TestTrivialStrategies:
    def test_local_always_n(self, alexnet_engine):
        strategy = LocalStrategy(alexnet_engine)
        for bw in (1e6, 64e6):
            decision = strategy.decide(bw, k=100.0)
            assert decision.point == alexnet_engine.num_nodes
            assert decision.is_local

    def test_full_always_zero(self, alexnet_engine):
        strategy = FullOffloadStrategy(alexnet_engine)
        for bw in (1e6, 64e6):
            assert strategy.decide(bw).point == 0

    def test_latencies_read_from_candidates(self, alexnet_engine):
        local = LocalStrategy(alexnet_engine).decide(8e6)
        ref = alexnet_engine.decide(8e6)
        assert local.predicted_latency == pytest.approx(
            float(ref.candidates[alexnet_engine.num_nodes])
        )


class TestDadsMinCut:
    def _chain(self, n=6):
        b = GraphBuilder("c", (1, 4, 8, 8))
        x = b.input
        for i in range(n):
            x = b.conv(x, 4, kernel=3, padding=1, name=f"c{i}")
        b.output(x)
        return b.build()

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_chain_matches_algorithm1(self, seed):
        """On chains, the general min-cut cannot beat the linear scan."""
        from repro.core.partition_algorithm import partition_decision

        graph = self._chain()
        rng = np.random.default_rng(seed)
        n = len(graph)
        device = rng.random(n).tolist()
        edge = (rng.random(n) * 0.01).tolist()
        bw = float(rng.uniform(1e5, 1e8))
        k = float(rng.uniform(1.0, 20.0))
        result = dads_min_cut(graph, device, edge, bw, k=k)
        decision = partition_decision(device, edge, graph.transmission_sizes(), bw, k=k)
        assert result.latency == pytest.approx(decision.predicted_latency, rel=1e-6)
        assert result.matches_prefix(graph.topological_order()) == decision.point

    def test_never_worse_than_algorithm1_on_dags(self, squeezenet_engine):
        """The general cut space contains every topological prefix."""
        engine = squeezenet_engine
        for bw in (2e6, 8e6, 32e6):
            decision = engine.decide(bw)
            result = dads_min_cut(
                engine.graph, list(engine.device_times), list(engine.edge_times), bw
            )
            assert result.latency <= decision.predicted_latency * (1 + 1e-9)

    def test_close_to_algorithm1_on_dags(self, squeezenet_engine):
        """§III-D: block-interior cuts buy (almost) nothing."""
        engine = squeezenet_engine
        decision = engine.decide(8e6)
        result = dads_min_cut(
            engine.graph, list(engine.device_times), list(engine.edge_times), 8e6
        )
        assert result.latency >= 0.95 * decision.predicted_latency

    def test_extreme_k_puts_everything_on_device(self, diamond_graph):
        n = len(diamond_graph)
        result = dads_min_cut(diamond_graph, [0.01] * n, [0.01] * n, 8e6, k=1e6)
        assert len(result.device_nodes) == n

    def test_fast_network_fast_server_offloads_everything(self, diamond_graph):
        n = len(diamond_graph)
        result = dads_min_cut(diamond_graph, [1.0] * n, [1e-9] * n, 1e12)
        assert len(result.device_nodes) == 0

    def test_validation(self, diamond_graph):
        n = len(diamond_graph)
        with pytest.raises(ValueError):
            dads_min_cut(diamond_graph, [1.0] * (n - 1), [1.0] * n, 8e6)
        with pytest.raises(ValueError):
            dads_min_cut(diamond_graph, [1.0] * n, [1.0] * n, 0.0)
        with pytest.raises(ValueError):
            dads_min_cut(diamond_graph, [1.0] * n, [1.0] * n, 8e6, k=0.5)

    def test_matches_prefix_returns_none_for_non_prefix(self, diamond_graph):
        from repro.core.baselines import MinCutResult

        order = diamond_graph.topological_order()
        non_prefix = MinCutResult(device_nodes=frozenset({order[1]}), latency=1.0)
        assert non_prefix.matches_prefix(order) is None
