"""GPU kernel model and the time-sliced contention scheduler."""

import numpy as np
import pytest

from repro.hardware.background import IDLE, U100H, U100L, U30, U90
from repro.hardware.gpu_model import GpuModel
from repro.hardware.gpu_scheduler import GpuScheduler
from repro.models import build_model
from repro.profiling.features import profile_graph
from tests.test_features import make_profile


@pytest.fixture(scope="module")
def gpu():
    return GpuModel()


@pytest.fixture(scope="module")
def scheduler():
    return GpuScheduler()


class TestGpuModel:
    def test_kernel_floor(self, gpu):
        tiny = make_profile("relu", (1, 4, 4, 4))
        assert gpu.mean_time(tiny) >= gpu.params.min_kernel_time

    def test_launch_overhead_included(self, gpu):
        tiny = make_profile("relu", (1, 4, 4, 4))
        assert gpu.mean_time(tiny) >= gpu.params.min_kernel_time + gpu.params.launch_overhead

    def test_occupancy_penalises_small_convs(self, gpu):
        small = make_profile("conv2d", (1, 16, 14, 14), out_channels=16, kernel=1)
        big = make_profile("conv2d", (1, 256, 56, 56), out_channels=256, kernel=3, padding=1)
        assert gpu.mean_time(small) / small.flops > gpu.mean_time(big) / big.flops

    def test_uncategorised_free(self, gpu):
        assert gpu.mean_time(make_profile("flatten", (1, 4, 4, 4))) == 0.0

    def test_server_is_orders_faster_than_device(self, gpu):
        from repro.hardware.device_model import DeviceModel

        profiles = profile_graph(build_model("vgg16"))
        server = gpu.mean_graph_time(profiles)
        device = DeviceModel().mean_graph_time(profiles)
        assert device > 100 * server

    def test_idle_server_times_are_milliseconds(self, gpu):
        """Fig. 1: server compute is negligible when idle."""
        for model in ("alexnet", "vgg16", "resnet50"):
            total = gpu.mean_graph_time(profile_graph(build_model(model)))
            assert total < 0.03, model

    def test_kernel_times_match_mean(self, gpu, chain_graph):
        profiles = profile_graph(chain_graph)
        assert sum(gpu.kernel_times(profiles)) == pytest.approx(
            gpu.mean_graph_time(profiles)
        )

    def test_sampled_kernels_near_mean(self, gpu, rng, chain_graph):
        profiles = profile_graph(chain_graph)
        totals = [sum(gpu.sample_kernel_times(profiles, rng)) for _ in range(300)]
        assert np.mean(totals) == pytest.approx(gpu.mean_graph_time(profiles), rel=0.03)


class TestScheduler:
    def test_idle_is_sum_of_kernels(self, scheduler):
        kernels = [1e-3, 2e-3, 0.5e-3]
        assert scheduler.execute(kernels, IDLE) == pytest.approx(sum(kernels))

    def test_empty_sequence(self, scheduler, rng):
        assert scheduler.execute([], U100H, rng) == 0.0

    def test_load_requires_rng(self, scheduler):
        with pytest.raises(ValueError, match="Generator"):
            scheduler.execute([1e-3], U100H)

    def test_load_never_speeds_up(self, scheduler, rng):
        kernels = [0.2e-3] * 30
        base = sum(kernels)
        for _ in range(50):
            assert scheduler.execute(kernels, U100H, rng) >= base

    def test_mean_ordering_by_level(self, scheduler, rng):
        kernels = [0.1e-3] * 50
        means = {}
        for level in (U30, U90, U100L, U100H):
            means[level.name] = np.mean(
                [scheduler.execute(kernels, level, rng) for _ in range(300)]
            )
        assert means["30%"] < means["90%"] < means["100%(l)"] < means["100%(h)"]

    def test_variance_grows_with_load(self, scheduler, rng):
        """Fig. 2: latencies fluctuate strongly under heavy load."""
        kernels = [0.1e-3] * 50
        std_low = np.std([scheduler.execute(kernels, U30, rng) for _ in range(300)])
        std_high = np.std([scheduler.execute(kernels, U100H, rng) for _ in range(300)])
        assert std_high > 5 * std_low

    def test_single_short_kernel_barely_affected_at_moderate_load(self, scheduler, rng):
        """§III-C: a single kernel usually completes in its slice."""
        single = [0.2e-3]
        samples = [scheduler.execute(single, U30, rng) for _ in range(2000)]
        unaffected = sum(1 for s in samples if s == pytest.approx(single[0], rel=1e-9))
        assert unaffected / len(samples) > 0.9

    def test_many_kernel_partition_suffers_more_than_single(self, scheduler, rng):
        """§III-C: partitions of many kernels are interrupted between kernels."""
        total = 2e-3
        single_slow = np.mean(
            [scheduler.execute([total], U100H, rng) for _ in range(300)]
        ) / total
        many_slow = np.mean(
            [scheduler.execute([total / 40] * 40, U100H, rng) for _ in range(300)]
        ) / total
        assert many_slow > 2 * single_slow

    def test_100h_worse_than_100l_at_equal_utilisation(self, scheduler, rng):
        kernels = [0.1e-3] * 40
        low = np.mean([scheduler.execute(kernels, U100L, rng) for _ in range(300)])
        high = np.mean([scheduler.execute(kernels, U100H, rng) for _ in range(300)])
        assert high > 2 * low

    def test_mean_execute_approximates_empirical(self, scheduler, rng):
        kernels = [0.15e-3] * 60
        empirical = np.mean([scheduler.execute(kernels, U100L, rng) for _ in range(2000)])
        analytic = scheduler.mean_execute(kernels, U100L)
        assert analytic == pytest.approx(empirical, rel=0.15)

    def test_mean_slowdown_at_idle_is_one(self, scheduler):
        assert scheduler.mean_slowdown([1e-3] * 5, IDLE) == 1.0

    def test_forced_yield_after_slice_exhaustion(self, rng):
        """A kernel longer than the slice forces a yield before the next."""
        scheduler = GpuScheduler(time_slice_s=1e-3)
        kernels = [5e-3, 1e-6]
        # Under saturation the second kernel always waits.
        samples = [scheduler.execute(kernels, U100H, rng) for _ in range(100)]
        assert min(samples) > sum(kernels)

    def test_invalid_slice(self):
        with pytest.raises(ValueError):
            GpuScheduler(time_slice_s=0.0)
