"""Streaming pipelined transport: chunked channel, joint decision, gated plans.

Covers the streaming stack bottom-up:

- :class:`StreamingConfig` validation and chunk planning;
- :meth:`Channel.try_upload_stream` semantics — single-chunk delegation,
  connection reuse (only the first chunk pays base latency), proportional
  per-chunk timeout shares, in-stream retries, and deterministic
  mid-stream fault charging under a :class:`FaultPlan`;
- the engine's joint ``(point, codec, chunking)`` scan — degenerate
  equivalence with Algorithm 1, bandwidth-driven codec/point shifts, the
  release schedule, ``joint_at`` pinning, and the stream-mode overlap
  bound;
- :class:`GatedRun` / :class:`PlanStream` — arrival-gated plan execution
  bit-identical to monolithic runs;
- the runtime streamed path — a degenerate config is byte-identical to
  no streaming at all, and lossless streamed runs reproduce the
  non-streaming output bit-for-bit.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.graph.partitioner import GraphPartitioner
from repro.network.channel import Channel, NetworkParams
from repro.network.faults import FaultPlan, FaultyChannel
from repro.network.streaming import StreamingConfig, plan_chunks
from repro.network.traces import ConstantTrace
from repro.nn.executor import GraphExecutor
from repro.nn.parallel import GatedRun, ParallelConfig, ParallelPlanRunner
from repro.nn.plan import SegmentPlan
from repro.runtime.system import OffloadingSystem, SystemConfig

BW = 8e6
QUIET = NetworkParams(base_latency_s=2.0e-3, jitter_sigma=0.0)


class TestStreamingConfig:
    def test_defaults_are_lossless(self):
        cfg = StreamingConfig()
        assert cfg.codecs == ("fp32", "zlib")
        assert not cfg.allow_lossy
        assert not cfg.is_degenerate

    def test_degenerate(self):
        assert StreamingConfig(chunk_bytes=None, codecs=("fp32",)).is_degenerate
        assert not StreamingConfig(chunk_bytes=None).is_degenerate

    def test_lossy_requires_opt_in(self):
        with pytest.raises(ValueError, match="lossy"):
            StreamingConfig(codecs=("fp32", "int8"))
        cfg = StreamingConfig(codecs=("fp32", "int8"), allow_lossy=True)
        assert "int8" in cfg.codecs

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingConfig(chunk_bytes=100)
        with pytest.raises(ValueError):
            StreamingConfig(codecs=())
        with pytest.raises(ValueError, match="unknown codec"):
            StreamingConfig(codecs=("bf16",))
        with pytest.raises(ValueError):
            StreamingConfig(chunk_overhead_s=-1.0)

    def test_plan_chunks(self):
        assert plan_chunks(10, None) == (10,)
        assert plan_chunks(0, 4096) == (0,)
        assert plan_chunks(10000, 4096) == (4096, 4096, 1808)
        cfg = StreamingConfig(chunk_bytes=4096)
        assert cfg.plan_chunks(10000) == (4096, 4096, 1808)
        assert cfg.num_chunks(10000) == 3
        assert cfg.num_chunks(10) == 1


class TestChunkedChannel:
    def test_single_chunk_delegates_to_try_upload(self):
        ch = Channel(ConstantTrace(BW), NetworkParams(jitter_sigma=0.1))
        mono = ch.try_upload(50_000, 1.0, np.random.default_rng(3))
        stream = ch.try_upload_stream((50_000,), 1.0, np.random.default_rng(3))
        assert stream.delivered and stream.chunks == 1
        assert stream.elapsed_s == mono.elapsed_s  # identical RNG draws
        assert stream.offsets_s == (mono.elapsed_s,)

    def test_only_first_chunk_pays_base_latency(self):
        ch = Channel(ConstantTrace(BW), QUIET)
        rng = np.random.default_rng(0)
        mono = ch.try_upload(30_000, 0.0, rng)
        stream = ch.try_upload_stream((10_000,) * 3, 0.0, rng)
        assert stream.delivered
        # Noiseless: the chunked stream costs exactly the monolithic upload
        # (one connection), NOT 3x the per-message latency.
        assert stream.elapsed_s == pytest.approx(mono.elapsed_s)
        assert stream.offsets_s[-1] == pytest.approx(stream.elapsed_s)
        assert all(a < b for a, b in zip(stream.offsets_s, stream.offsets_s[1:]))

    def test_mid_stream_fault_charges_only_chunk_share(self):
        # Chunk 2 starts at 10 ms, inside the outage window: it is charged
        # its proportional timeout share (0.1 s = 0.3 * 10k/30k), retried
        # once in-stream, and the stream completes.
        plan = FaultPlan(outages=((0.005, 0.015),))
        ch = FaultyChannel(ConstantTrace(BW), plan, QUIET)
        res = ch.try_upload_stream(
            (10_000,) * 3, 0.0, np.random.default_rng(0),
            timeout_s=0.3, max_chunk_retries=1, min_chunk_timeout_s=0.05)
        assert res.delivered
        assert res.chunk_retries == 1
        chunk_s = 10_000 * 8 / BW
        expected = (QUIET.base_latency_s + chunk_s) + (0.1 + chunk_s) + chunk_s
        assert res.elapsed_s == pytest.approx(expected)
        assert len(res.offsets_s) == 3

    def test_mid_stream_fault_aborts_deterministically_without_retries(self):
        plan = FaultPlan(outages=((0.005, 0.015),))
        ch = FaultyChannel(ConstantTrace(BW), plan, QUIET)
        res = ch.try_upload_stream(
            (10_000,) * 3, 0.0, np.random.default_rng(0),
            timeout_s=0.3, max_chunk_retries=0, min_chunk_timeout_s=0.05)
        assert not res.delivered and res.timed_out
        assert res.failed_chunk == 1
        # Partial elapsed: delivered chunk 1 plus the failed chunk's share.
        assert res.elapsed_s == pytest.approx(
            QUIET.base_latency_s + 10_000 * 8 / BW + 0.1)
        assert len(res.offsets_s) == 1

    def test_fault_sequence_is_seed_deterministic(self):
        def run():
            plan = FaultPlan(drop_prob=0.4, seed=9)
            ch = FaultyChannel(ConstantTrace(BW), plan,
                               NetworkParams(jitter_sigma=0.1))
            return ch.try_upload_stream(
                (10_000,) * 4, 0.0, np.random.default_rng(2),
                timeout_s=0.5, max_chunk_retries=2, min_chunk_timeout_s=0.01)

        first, second = run(), run()
        assert first == second

    def test_budget_exhaustion_aborts(self):
        ch = Channel(ConstantTrace(1e5), QUIET)  # 0.8 s per 1 kB chunk
        res = ch.try_upload_stream(
            (1000,) * 4, 0.0, np.random.default_rng(0), timeout_s=0.1,
            max_chunk_retries=3, min_chunk_timeout_s=0.0)
        assert not res.delivered and res.timed_out

    def test_rejects_empty_and_negative(self):
        ch = Channel(ConstantTrace(BW), QUIET)
        with pytest.raises(ValueError):
            ch.try_upload_stream((), 0.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            ch.try_upload_stream((10, -1), 0.0, np.random.default_rng(0))


class TestJointDecision:
    def test_degenerate_config_reproduces_algorithm_1(self, squeezenet_engine):
        cfg = StreamingConfig(chunk_bytes=None, codecs=("fp32",))
        for bw in (1e6, 4e6, 2e7):
            base = squeezenet_engine.decide(bw, k=1.3)
            joint = squeezenet_engine.decide_joint(bw, k=1.3, streaming=cfg)
            assert joint.point == base.point
            assert joint.codec == "fp32" and not joint.streamed
            assert joint.predicted_latency == base.predicted_latency
            np.testing.assert_array_equal(
                joint.candidates[("fp32", "mono")], base.candidates)

    def test_codec_and_point_shift_with_bandwidth(self, squeezenet_engine):
        cfg = StreamingConfig()
        low = squeezenet_engine.decide_joint(4e6, streaming=cfg)
        high = squeezenet_engine.decide_joint(1e9, streaming=cfg)
        # Transfer-dominated: compression pays for its encode time.
        assert low.codec == "zlib"
        assert low.wire_bytes < squeezenet_engine.sizes[low.point]
        # Fat link: encoding is pure overhead, identity codec wins.
        assert high.codec == "fp32"
        assert low.point != high.point

    def test_stream_mode_bounded_by_mono_plus_overhead(self, engine_for):
        engine = engine_for("resnet18")
        cfg = StreamingConfig(chunk_bytes=16 * 1024)
        jd = engine.decide_joint(4e6, streaming=cfg)
        for name in cfg.codecs:
            mono = jd.candidates[(name, "mono")]
            stream = jd.candidates[(name, "stream")]
            finite = np.isfinite(stream)
            codec_wire = engine._wire_sizes(name)
            chunks = np.array([cfg.num_chunks(int(w)) for w in codec_wire])
            slack = (chunks - 1) * cfg.chunk_overhead_s + 1e-9
            assert np.all(stream[finite] <= mono[finite] + slack[finite])

    def test_stream_mode_wins_at_branchy_cuts(self, engine_for):
        """Cuts with multiple release entries genuinely overlap decode and
        tail compute with the upload: the streamed objective is strictly
        cheaper there."""
        engine = engine_for("resnet18")
        cfg = StreamingConfig(chunk_bytes=16 * 1024)
        jd = engine.decide_joint(4e6, streaming=cfg)
        mono = jd.candidates[("zlib", "mono")]
        stream = jd.candidates[("zlib", "stream")]
        branchy = [p for p in range(engine.num_nodes)
                   if len(engine.release_schedule(p)) > 1
                   and np.isfinite(stream[p])]
        assert branchy, "resnet18 must have multi-tensor cuts"
        assert all(stream[p] < mono[p] for p in branchy)

    def test_release_schedule_properties(self, engine_for):
        engine = engine_for("resnet18")
        for point in (5, 13, 21):
            schedule = engine.release_schedule(point)
            names = [name for name, _nb, _op in engine.cut_tensors(point)]
            assert schedule[0][1] == point  # the first tail node is gated
            gates = [g for g, _j in schedule]
            starts = [j for _g, j in schedule]
            assert all(g in names for g in gates)
            assert starts == sorted(set(starts))
            # Gates appear in wire order: the device serializes the tensor
            # the server needs soonest first.
            assert [names.index(g) for g in gates] == sorted(
                names.index(g) for g in gates)

    def test_joint_at_pins_point_and_mode(self, squeezenet_engine):
        cfg = StreamingConfig(chunk_bytes=4096)
        jd = squeezenet_engine.decide_joint(4e6, streaming=cfg)
        point = 49
        pinned = squeezenet_engine.joint_at(point, "zlib", True, 4e6,
                                            streaming=cfg)
        assert pinned.point == point and pinned.codec == "zlib"
        assert pinned.streamed and pinned.chunks > 1
        assert pinned.predicted_latency == pytest.approx(
            float(jd.candidates[("zlib", "stream")][point]))

    def test_joint_at_rejects_infeasible_stream(self, squeezenet_engine):
        # Every cut fits one chunk: the streamed mode never materialises.
        cfg = StreamingConfig(chunk_bytes=2 ** 22)
        with pytest.raises(ValueError, match="infeasible"):
            squeezenet_engine.joint_at(49, "zlib", True, 4e6, streaming=cfg)
        with pytest.raises(ValueError, match="no candidate"):
            squeezenet_engine.joint_at(
                49, "int8", False, 4e6,
                streaming=StreamingConfig(chunk_bytes=None))

    def test_decide_joint_requires_config(self, squeezenet_engine):
        with pytest.raises(ValueError, match="StreamingConfig"):
            squeezenet_engine.decide_joint(4e6)


class TestGatedRun:
    def _runner(self, log, threads=2):
        chains = [[lambda: log.append("a")], [lambda: log.append("b")]]
        return ParallelPlanRunner(chains, [set(), {0}], threads)

    def test_gates_hold_back_chains(self):
        log: list = []
        runner = self._runner(log)
        run = runner.begin([{"x"}, set()])
        assert log == []  # chain 0 gated, chain 1 depends on it: nothing ran
        run.release("x")
        run.finish()
        assert log == ["a", "b"]

    def test_ungated_begin_is_run(self):
        log: list = []
        self._runner(log).begin().finish()
        assert log == ["a", "b"]

    def test_finish_with_unreleased_gates_raises(self):
        run = self._runner([]).begin([{"x"}, set()])
        with pytest.raises(RuntimeError, match="unreleased gates"):
            run.finish()

    def test_unknown_release_is_noop(self):
        log: list = []
        run = self._runner(log).begin()
        run.release("nope")
        run.finish()
        assert log == ["a", "b"]

    def test_chain_error_propagates(self):
        def boom():
            raise ValueError("chain failed")

        runner = ParallelPlanRunner([[boom]], [set()], 2)
        with pytest.raises(ValueError, match="chain failed"):
            runner.begin().finish()

    def test_gate_list_must_match_chains(self):
        with pytest.raises(ValueError, match="one-to-one"):
            self._runner([]).begin([set()])

    def test_gated_run_exported(self):
        assert isinstance(self._runner([]).begin(), GatedRun)


@pytest.fixture
def fire_tail(fire_graph):
    """SqueezeNet-style fire tail with two crossing tensors (e1, e3 inputs)."""
    part = GraphPartitioner(fire_graph).partition(2)
    params = GraphExecutor(fire_graph, seed=0).params
    return part, params


class TestPlanStream:
    @pytest.mark.parametrize("parallel", [None, ParallelConfig(threads=2)],
                             ids=["serial", "threaded"])
    def test_bit_identical_to_run_any_feed_order(self, fire_tail, rng, parallel):
        part, params = fire_tail
        plan = SegmentPlan(part.tail, params=params, parallel=parallel)
        boundary = {
            name: rng.standard_normal(spec.shape).astype(np.float32)
            for name, spec in part.tail.boundary_inputs.items()
        }
        ref = plan.run(boundary)
        names = list(boundary)
        for order in (names, names[::-1]):
            stream = plan.begin_streaming()
            for name in order:
                stream.feed(name, boundary[name])
            out = stream.finish()
            assert set(out) == set(ref)
            for key in ref:
                np.testing.assert_array_equal(out[key], ref[key])

    def test_feed_validation(self, fire_tail, rng):
        part, params = fire_tail
        plan = SegmentPlan(part.tail, params=params)
        boundary = {
            name: rng.standard_normal(spec.shape).astype(np.float32)
            for name, spec in part.tail.boundary_inputs.items()
        }
        name = next(iter(boundary))
        stream = plan.begin_streaming()
        with pytest.raises(ValueError, match="unknown"):
            stream.feed("nope", boundary[name])
        with pytest.raises(ValueError, match="shape"):
            stream.feed(name, np.zeros((1, 1), dtype=np.float32))
        stream.feed(name, boundary[name])
        with pytest.raises(ValueError, match="already-fed"):
            stream.feed(name, boundary[name])
        with pytest.raises(ValueError, match="missing"):
            stream.finish()
        # finish() released the plan even on failure: a clean run works.
        ref = plan.run(boundary)
        assert set(ref) == set(part.tail.result_names)

    def test_abort_releases_the_plan(self, fire_tail, rng):
        part, params = fire_tail
        plan = SegmentPlan(part.tail, params=params,
                           parallel=ParallelConfig(threads=2))
        boundary = {
            name: rng.standard_normal(spec.shape).astype(np.float32)
            for name, spec in part.tail.boundary_inputs.items()
        }
        ref = plan.run(boundary)
        stream = plan.begin_streaming()
        stream.feed(next(iter(boundary)), boundary[next(iter(boundary))])
        stream.abort()
        stream.abort()  # idempotent
        again = plan.run(boundary)
        for key in ref:
            np.testing.assert_array_equal(again[key], ref[key])


def _run_system(engine, streaming, seed=7, max_requests=6):
    config = SystemConfig(seed=seed, policy="loadpart", functional=True,
                          backend="planned", streaming=streaming)
    system = OffloadingSystem(engine, config=config)
    timeline = system.run(5.0, max_requests=max_requests)
    return system, timeline


class TestRuntimeStreaming:
    def test_streaming_requires_loadpart(self):
        with pytest.raises(ValueError, match="loadpart"):
            SystemConfig(policy="local", streaming=StreamingConfig())
        with pytest.raises(ValueError, match="StreamingConfig"):
            SystemConfig(streaming="zlib")

    def test_degenerate_config_is_byte_identical(self, squeezenet_engine):
        plain_sys, plain = _run_system(squeezenet_engine, None)
        degen_sys, degen = _run_system(
            squeezenet_engine,
            StreamingConfig(chunk_bytes=None, codecs=("fp32",)))
        assert len(plain) == len(degen) > 0
        for a, b in zip(plain, degen):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)
        assert (plain_sys.device.last_output.tobytes()
                == degen_sys.device.last_output.tobytes())

    def test_lossless_streamed_run_reproduces_output(self, squeezenet_engine):
        plain_sys, _ = _run_system(squeezenet_engine, None)
        stream_sys, timeline = _run_system(
            squeezenet_engine, StreamingConfig(chunk_bytes=4096))
        assert len(timeline) > 0
        offloaded = [r for r in timeline if r.partition_point
                     < squeezenet_engine.num_nodes]
        assert offloaded, "squeezenet must offload at the default bandwidth"
        for record in offloaded:
            assert record.codec in ("fp32", "zlib")
            if record.codec == "zlib":
                assert record.encode_s > 0.0
                assert record.decode_s >= 0.0
            assert record.chunks >= 1
        # zlib is lossless and plans are bit-identical: the functional
        # output matches the non-streaming run even though the decision
        # (point, codec) differs.
        assert (stream_sys.device.last_output.tobytes()
                == plain_sys.device.last_output.tobytes())

    def test_streamed_records_carry_pipeline_fields(self, squeezenet_engine):
        """Pin the joint decision to streamed zlib at a fixed cut (via
        ``joint_at``) and drive the full runtime: chunked uploads, arrival
        gating and the pipeline fields on the records — with the lossless
        output still bit-identical to the plain run."""

        class PinnedStreamPolicy:
            def __init__(self, engine, point, codec):
                self._engine = engine
                self._point = point
                self._codec = codec

            def decide_joint(self, bandwidth, k=1.0, streaming=None,
                             **kwargs):
                return self._engine.joint_at(
                    self._point, self._codec, True, bandwidth, k=k,
                    streaming=streaming)

            def __getattr__(self, name):
                return getattr(self._engine, name)

        plain_sys, _ = _run_system(squeezenet_engine, None)
        config = SystemConfig(seed=7, policy="loadpart", functional=True,
                              backend="planned",
                              streaming=StreamingConfig(chunk_bytes=2048))
        system = OffloadingSystem(squeezenet_engine, config=config)
        system.device.policy = PinnedStreamPolicy(squeezenet_engine, 49, "zlib")
        timeline = system.run(5.0, max_requests=6)
        chunked = [r for r in timeline if r.chunks > 1]
        assert len(chunked) == len(timeline.records) > 0
        for record in chunked:
            assert record.partition_point == 49
            assert record.codec == "zlib"
            assert record.encode_s > 0.0 and record.decode_s >= 0.0
            assert record.completed and record.total_s > 0.0
        assert (system.device.last_output.tobytes()
                == plain_sys.device.last_output.tobytes())
