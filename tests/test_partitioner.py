"""GraphPartitioner: the Fig. 5 segment-to-subgraph procedure."""

import pytest

from repro.graph.graph import GraphError
from repro.graph.partitioner import GraphPartitioner


class TestChainPartition:
    def test_full_offload_head_empty(self, chain_graph):
        part = GraphPartitioner(chain_graph).partition(0)
        assert part.head.is_empty
        assert not part.tail.is_empty
        assert part.transfer_specs == {chain_graph.input_name: chain_graph.input_spec}
        assert part.upload_bytes == chain_graph.input_spec.nbytes

    def test_local_tail_empty(self, chain_graph):
        n = len(chain_graph)
        part = GraphPartitioner(chain_graph).partition(n)
        assert part.tail.is_empty
        assert part.upload_bytes == 0
        assert part.head.result_names == (chain_graph.output_name,)

    def test_mid_partition_transfer(self, chain_graph):
        part = GraphPartitioner(chain_graph).partition(3)
        assert list(part.transfer_specs) == ["relu"]
        assert part.upload_bytes == chain_graph.node("relu").output.nbytes

    def test_head_boundary_is_graph_input(self, chain_graph):
        part = GraphPartitioner(chain_graph).partition(3)
        assert list(part.head.boundary_inputs) == [chain_graph.input_name]

    def test_tail_boundary_matches_transfer(self, chain_graph):
        part = GraphPartitioner(chain_graph).partition(3)
        assert part.tail.boundary_inputs == part.transfer_specs

    def test_single_result_no_make_tuple(self, chain_graph):
        part = GraphPartitioner(chain_graph).partition(3)
        assert not part.head.has_make_tuple
        assert part.head.nodes[-1].op == "return"

    def test_out_of_range_rejected(self, chain_graph):
        p = GraphPartitioner(chain_graph)
        with pytest.raises(GraphError):
            p.partition(-1)
        with pytest.raises(GraphError):
            p.partition(len(chain_graph) + 1)

    def test_num_points(self, chain_graph):
        assert GraphPartitioner(chain_graph).num_points == len(chain_graph) + 1


class TestDagPartition:
    def test_cut_inside_block_has_make_tuple(self, diamond_graph):
        order = diamond_graph.topological_order()
        partitioner = GraphPartitioner(diamond_graph)
        # Position 2 crosses two tensors (branch output + stem output).
        part = partitioner.partition(2)
        assert len(part.transfer_specs) == 2
        assert part.head.has_make_tuple
        make_tuple = [n for n in part.head.nodes if n.op == "make_tuple"]
        assert len(make_tuple) == 1
        assert set(make_tuple[0].inputs) <= set(part.transfer_specs)

    def test_tail_consumes_both_transfers(self, diamond_graph):
        part = GraphPartitioner(diamond_graph).partition(2)
        tail_inputs = {dep for node in part.tail.compute_nodes for dep in node.inputs}
        assert set(part.transfer_specs) <= tail_inputs

    def test_fire_module_concat_cut(self, fire_graph):
        partitioner = GraphPartitioner(fire_graph)
        n = len(fire_graph)
        part = partitioner.partition(n - 1)  # right before the concat
        assert len(part.transfer_specs) == 2

    def test_result_bytes_consistency(self, fire_graph):
        partitioner = GraphPartitioner(fire_graph)
        for p in range(len(fire_graph) + 1):
            part = partitioner.partition(p)
            if p > 0:
                expected = sum(
                    spec.nbytes for name, spec in part.transfer_specs.items()
                    if name != fire_graph.input_name
                )
                if fire_graph.output_name in set(n.name for n in part.head.compute_nodes):
                    expected = max(expected, part.head.result_bytes)
                assert part.head.result_bytes >= 0

    def test_every_point_produces_consistent_segments(self, diamond_graph):
        partitioner = GraphPartitioner(diamond_graph)
        order = diamond_graph.topological_order()
        for p in range(len(order) + 1):
            part = partitioner.partition(p)
            head_names = {n.name for n in part.head.compute_nodes}
            tail_names = {n.name for n in part.tail.compute_nodes}
            assert head_names == set(order[:p])
            assert tail_names == set(order[p:])
            assert not head_names & tail_names

    def test_upload_matches_graph_cut_analysis(self, diamond_graph):
        partitioner = GraphPartitioner(diamond_graph)
        sizes = diamond_graph.transmission_sizes()
        for p in range(len(diamond_graph) + 1):
            assert partitioner.partition(p).upload_bytes == sizes[p]
